// Package rbtree implements the paper's red-black tree kernel
// (Table II): a self-balancing binary tree whose nodes carry a parent
// pointer and a color field.
//
// Annotation discipline (§IV):
//
//   - all fields of a freshly allocated node are log-free (Pattern 1);
//   - parent-pointer updates on existing nodes are lazy and log-free:
//     parent pointers are fully derivable from the child links, so
//     recovery rebuilds them with one tree walk. This is the pattern
//     the paper's compiler also finds ("a few lazily persistent pointer
//     variables, such as the parent pointer of the rbtree");
//   - child-link updates, recolorings and the root pointer on existing
//     nodes are plain logged stores (the color is not derivable — the
//     paper notes its compiler misses it too, without performance
//     impact since colors share lines with logged child pointers).
package rbtree

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Node layout.
const (
	offKey    = 0
	offVLen   = 8
	offLeft   = 16
	offRight  = 24
	offParent = 32
	offColor  = 40
	offVal    = 48
)

// Colors.
const (
	red   = 0
	black = 1
)

func init() {
	workloads.Register("rbtree", func() workloads.Workload { return New() })
}

// Tree is the red-black tree workload.
type Tree struct{}

// New returns a fresh rbtree workload.
func New() *Tree { return &Tree{} }

// Name implements workloads.Workload.
func (t *Tree) Name() string { return "rbtree" }

// ComputeCost implements workloads.Workload.
func (t *Tree) ComputeCost() uint64 { return 2 }

// Setup implements workloads.Workload.
func (t *Tree) Setup(sys *slpmt.System) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		tx.SetRoot(workloads.RootMain, 0)
		tx.SetRoot(workloads.RootCount, 0)
		return nil
	})
}

// Field accessors (volatile view through the transaction).

func fKey(tx *slpmt.Tx, n slpmt.Addr) uint64    { return tx.LoadU64(n + offKey) }
func fLeft(tx *slpmt.Tx, n slpmt.Addr) uint64   { return tx.LoadU64(n + offLeft) }
func fRight(tx *slpmt.Tx, n slpmt.Addr) uint64  { return tx.LoadU64(n + offRight) }
func fParent(tx *slpmt.Tx, n slpmt.Addr) uint64 { return tx.LoadU64(n + offParent) }
func fColor(tx *slpmt.Tx, n slpmt.Addr) uint64  { return tx.LoadU64(n + offColor) }

// setChild updates a child link on an existing node: plain logged store.
func setLeft(tx *slpmt.Tx, n slpmt.Addr, v uint64)  { tx.StoreU64(n+offLeft, v) }
func setRight(tx *slpmt.Tx, n slpmt.Addr, v uint64) { tx.StoreU64(n+offRight, v) }

// setParent updates a parent pointer: lazy + log-free (derivable).
func setParent(tx *slpmt.Tx, n slpmt.Addr, v uint64) {
	tx.StoreTU64(n+offParent, v, slpmt.LazyLogFree)
}

// setColor recolors an existing node: plain logged store.
func setColor(tx *slpmt.Tx, n slpmt.Addr, c uint64) { tx.StoreU64(n+offColor, c) }

// Insert implements workloads.Workload.
func (t *Tree) Insert(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		root := slpmt.Addr(tx.Root(workloads.RootMain))

		// BST descent.
		var parent slpmt.Addr
		cur := root
		goLeft := false
		for cur != 0 {
			parent = cur
			k := fKey(tx, cur)
			if key == k {
				return fmt.Errorf("rbtree: duplicate key %d", key)
			}
			if key < k {
				cur = slpmt.Addr(fLeft(tx, cur))
				goLeft = true
			} else {
				cur = slpmt.Addr(fRight(tx, cur))
				goLeft = false
			}
		}

		// Fresh node: every field log-free (Pattern 1).
		n := tx.Alloc(offVal + uint64(len(value)))
		tx.StoreTU64(n+offKey, key, slpmt.LogFree)
		tx.StoreTU64(n+offVLen, uint64(len(value)), slpmt.LogFree)
		tx.StoreTU64(n+offLeft, 0, slpmt.LogFree)
		tx.StoreTU64(n+offRight, 0, slpmt.LogFree)
		tx.StoreTU64(n+offParent, uint64(parent), slpmt.LogFree)
		tx.StoreTU64(n+offColor, red, slpmt.LogFree)
		tx.StoreT(n+offVal, value, slpmt.LogFree)

		// Link into the tree: logged (the structural commit point).
		if parent == 0 {
			tx.SetRoot(workloads.RootMain, uint64(n))
		} else if goLeft {
			setLeft(tx, parent, uint64(n))
		} else {
			setRight(tx, parent, uint64(n))
		}

		t.insertFixup(tx, n)
		tx.SetRoot(workloads.RootCount, tx.Root(workloads.RootCount)+1)
		return nil
	})
}

// insertFixup restores the red-black invariants after inserting the red
// node z (CLRS).
func (t *Tree) insertFixup(tx *slpmt.Tx, z slpmt.Addr) {
	for {
		p := slpmt.Addr(fParent(tx, z))
		if p == 0 || fColor(tx, p) == black {
			break
		}
		g := slpmt.Addr(fParent(tx, p))
		if g == 0 {
			break
		}
		if uint64(p) == fLeft(tx, g) {
			u := slpmt.Addr(fRight(tx, g))
			if u != 0 && fColor(tx, u) == red {
				setColor(tx, p, black)
				setColor(tx, u, black)
				setColor(tx, g, red)
				z = g
				continue
			}
			if uint64(z) == fRight(tx, p) {
				z = p
				t.rotateLeft(tx, z)
				p = slpmt.Addr(fParent(tx, z))
				g = slpmt.Addr(fParent(tx, p))
			}
			setColor(tx, p, black)
			setColor(tx, g, red)
			t.rotateRight(tx, g)
		} else {
			u := slpmt.Addr(fLeft(tx, g))
			if u != 0 && fColor(tx, u) == red {
				setColor(tx, p, black)
				setColor(tx, u, black)
				setColor(tx, g, red)
				z = g
				continue
			}
			if uint64(z) == fLeft(tx, p) {
				z = p
				t.rotateRight(tx, z)
				p = slpmt.Addr(fParent(tx, z))
				g = slpmt.Addr(fParent(tx, p))
			}
			setColor(tx, p, black)
			setColor(tx, g, red)
			t.rotateLeft(tx, g)
		}
	}
	root := slpmt.Addr(tx.Root(workloads.RootMain))
	if fColor(tx, root) != black {
		setColor(tx, root, black)
	}
}

// rotateLeft rotates the subtree at x left; child links are logged,
// parent pointers lazy+log-free.
func (t *Tree) rotateLeft(tx *slpmt.Tx, x slpmt.Addr) {
	y := slpmt.Addr(fRight(tx, x))
	yl := fLeft(tx, y)
	setRight(tx, x, yl)
	if yl != 0 {
		setParent(tx, slpmt.Addr(yl), uint64(x))
	}
	p := slpmt.Addr(fParent(tx, x))
	setParent(tx, y, uint64(p))
	if p == 0 {
		tx.SetRoot(workloads.RootMain, uint64(y))
	} else if uint64(x) == fLeft(tx, p) {
		setLeft(tx, p, uint64(y))
	} else {
		setRight(tx, p, uint64(y))
	}
	setLeft(tx, y, uint64(x))
	setParent(tx, x, uint64(y))
}

// rotateRight is the mirror of rotateLeft.
func (t *Tree) rotateRight(tx *slpmt.Tx, x slpmt.Addr) {
	y := slpmt.Addr(fLeft(tx, x))
	yr := fRight(tx, y)
	setLeft(tx, x, yr)
	if yr != 0 {
		setParent(tx, slpmt.Addr(yr), uint64(x))
	}
	p := slpmt.Addr(fParent(tx, x))
	setParent(tx, y, uint64(p))
	if p == 0 {
		tx.SetRoot(workloads.RootMain, uint64(y))
	} else if uint64(x) == fLeft(tx, p) {
		setLeft(tx, p, uint64(y))
	} else {
		setRight(tx, p, uint64(y))
	}
	setRight(tx, y, uint64(x))
	setParent(tx, x, uint64(y))
}

// Get implements workloads.Workload.
func (t *Tree) Get(sys *slpmt.System, key uint64) (val []byte, ok bool) {
	sys.View(func(tx *slpmt.Tx) {
		n := slpmt.Addr(tx.Root(workloads.RootMain))
		for n != 0 {
			k := fKey(tx, n)
			switch {
			case key == k:
				vlen := tx.LoadU64(n + offVLen)
				val = make([]byte, vlen)
				tx.Load(n+offVal, val)
				ok = true
				return
			case key < k:
				n = slpmt.Addr(fLeft(tx, n))
			default:
				n = slpmt.Addr(fRight(tx, n))
			}
		}
	})
	return val, ok
}

// Check implements workloads.Workload: verifies the red-black
// invariants, parent-pointer consistency, and the oracle.
func (t *Tree) Check(sys *slpmt.System, oracle map[uint64][]byte) error {
	var err error
	count := 0
	sys.View(func(tx *slpmt.Tx) {
		root := slpmt.Addr(tx.Root(workloads.RootMain))
		if root == 0 {
			if len(oracle) != 0 {
				err = fmt.Errorf("rbtree: empty tree, oracle has %d", len(oracle))
			}
			return
		}
		if fColor(tx, root) != black {
			err = fmt.Errorf("rbtree: red root")
			return
		}
		var walk func(n slpmt.Addr, lo, hi uint64, parent slpmt.Addr) int
		walk = func(n slpmt.Addr, lo, hi uint64, parent slpmt.Addr) int {
			if err != nil {
				return 0
			}
			if n == 0 {
				return 1
			}
			k := fKey(tx, n)
			if k <= lo || k >= hi {
				err = fmt.Errorf("rbtree: BST violation at key %d", k)
				return 0
			}
			if slpmt.Addr(fParent(tx, n)) != parent {
				err = fmt.Errorf("rbtree: bad parent pointer at key %d", k)
				return 0
			}
			c := fColor(tx, n)
			l, r := slpmt.Addr(fLeft(tx, n)), slpmt.Addr(fRight(tx, n))
			if c == red {
				if (l != 0 && fColor(tx, l) == red) || (r != 0 && fColor(tx, r) == red) {
					err = fmt.Errorf("rbtree: red-red violation at key %d", k)
					return 0
				}
			}
			count++
			bl := walk(l, lo, k, n)
			br := walk(r, k, hi, n)
			if err == nil && bl != br {
				err = fmt.Errorf("rbtree: black-height mismatch at key %d", k)
			}
			if c == black {
				return bl + 1
			}
			return bl
		}
		walk(root, 0, ^uint64(0), 0)
	})
	if err != nil {
		return err
	}
	if count != len(oracle) {
		return fmt.Errorf("rbtree: %d nodes, oracle %d", count, len(oracle))
	}
	return workloads.CheckOracle(sys, t, oracle)
}

// --- Recovery over the durable image -------------------------------

func layout(img *pmem.Image) mem.Layout { return mem.DefaultLayout(uint64(len(img.Data))) }

func readRoot(img *pmem.Image, slot int) uint64 {
	return img.ReadU64(layout(img).RootBase + mem.Addr(slot*8))
}

// Recover implements workloads.Recoverable: rebuilds every parent
// pointer from the (logged, undo-restored) child links — the recovery
// counterpart of marking parent stores lazy+log-free.
func (t *Tree) Recover(img *pmem.Image) error {
	root := mem.Addr(readRoot(img, workloads.RootMain))
	if root == 0 {
		return nil
	}
	var fix func(n, parent mem.Addr) error
	var depth int
	fix = func(n, parent mem.Addr) error {
		if n == 0 {
			return nil
		}
		depth++
		if depth > 1<<20 {
			return fmt.Errorf("rbtree recover: cycle suspected")
		}
		img.WriteU64(n+offParent, uint64(parent))
		if err := fix(mem.Addr(img.ReadU64(n+offLeft)), n); err != nil {
			return err
		}
		return fix(mem.Addr(img.ReadU64(n+offRight)), n)
	}
	return fix(root, 0)
}

// Reach implements workloads.Recoverable.
func (t *Tree) Reach(img *pmem.Image) ([]txheap.Extent, error) {
	var out []txheap.Extent
	var walk func(n mem.Addr) error
	walk = func(n mem.Addr) error {
		if n == 0 {
			return nil
		}
		vlen := img.ReadU64(n + offVLen)
		out = append(out, txheap.Extent{Addr: n, Size: offVal + vlen})
		if err := walk(mem.Addr(img.ReadU64(n + offLeft))); err != nil {
			return err
		}
		return walk(mem.Addr(img.ReadU64(n + offRight)))
	}
	if err := walk(mem.Addr(readRoot(img, workloads.RootMain))); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckDurable implements workloads.Recoverable.
func (t *Tree) CheckDurable(img *pmem.Image, oracle map[uint64][]byte) error {
	root := mem.Addr(readRoot(img, workloads.RootMain))
	seen := map[uint64]bool{}
	var firstErr error
	var walk func(n mem.Addr, lo, hi uint64, parent mem.Addr) int
	walk = func(n mem.Addr, lo, hi uint64, parent mem.Addr) int {
		if firstErr != nil {
			return 0
		}
		if n == 0 {
			return 1
		}
		k := img.ReadU64(n + offKey)
		if k <= lo || k >= hi {
			firstErr = fmt.Errorf("rbtree durable: BST violation at %d", k)
			return 0
		}
		if mem.Addr(img.ReadU64(n+offParent)) != parent {
			firstErr = fmt.Errorf("rbtree durable: bad parent at %d", k)
			return 0
		}
		want, ok := oracle[k]
		if !ok {
			firstErr = fmt.Errorf("rbtree durable: unexpected key %d", k)
			return 0
		}
		vlen := img.ReadU64(n + offVLen)
		got := make([]byte, vlen)
		img.Read(n+offVal, got)
		if string(got) != string(want) {
			firstErr = fmt.Errorf("rbtree durable: value mismatch at %d", k)
			return 0
		}
		seen[k] = true
		c := img.ReadU64(n + offColor)
		l := mem.Addr(img.ReadU64(n + offLeft))
		r := mem.Addr(img.ReadU64(n + offRight))
		if c == red {
			if (l != 0 && img.ReadU64(l+offColor) == red) || (r != 0 && img.ReadU64(r+offColor) == red) {
				firstErr = fmt.Errorf("rbtree durable: red-red at %d", k)
				return 0
			}
		}
		bl := walk(l, lo, k, n)
		br := walk(r, k, hi, n)
		if firstErr == nil && bl != br {
			firstErr = fmt.Errorf("rbtree durable: black-height mismatch at %d", k)
		}
		if c == black {
			return bl + 1
		}
		return bl
	}
	if root != 0 {
		if img.ReadU64(root+offColor) != black {
			return fmt.Errorf("rbtree durable: red root")
		}
		walk(root, 0, ^uint64(0), 0)
	}
	if firstErr != nil {
		return firstErr
	}
	if len(seen) != len(oracle) {
		return fmt.Errorf("rbtree durable: %d keys, oracle %d", len(seen), len(oracle))
	}
	return nil
}
