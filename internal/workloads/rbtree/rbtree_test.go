package rbtree

import (
	"math/rand"
	"testing"

	"github.com/persistmem/slpmt"
)

func build(t *testing.T, keys []uint64) (*Tree, *slpmt.System) {
	t.Helper()
	tr := New()
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := tr.Setup(sys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := tr.Insert(sys, k, []byte("vvvvvvvv")); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	return tr, sys
}

// TestSortedInsertBalances: sequential keys trigger every rotation path;
// the invariant checker bounds the black height.
func TestSortedInsertBalances(t *testing.T) {
	keys := make([]uint64, 255)
	oracle := map[uint64][]byte{}
	for i := range keys {
		keys[i] = uint64(i + 1)
		oracle[keys[i]] = []byte("vvvvvvvv")
	}
	tr, sys := build(t, keys)
	if err := tr.Check(sys, oracle); err != nil {
		t.Fatal(err)
	}
	// Balanced: depth of any key lookup stays logarithmic. Count loads
	// as a proxy via the deepest descent.
	depth := 0
	sys.View(func(tx *slpmt.Tx) {
		n := slpmt.Addr(tx.Root(0))
		for n != 0 {
			depth++
			n = slpmt.Addr(tx.LoadU64(n + offRight))
		}
	})
	if depth > 2*9 { // 2*log2(256) black-height bound
		t.Errorf("right spine depth %d too deep for 255 sorted inserts", depth)
	}
}

func TestRandomInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	oracle := map[uint64][]byte{}
	var keys []uint64
	for len(keys) < 300 {
		k := rng.Uint64()%100000 + 1
		if _, dup := oracle[k]; dup {
			continue
		}
		oracle[k] = []byte("vvvvvvvv")
		keys = append(keys, k)
	}
	tr, sys := build(t, keys)
	if err := tr.Check(sys, oracle); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRejected(t *testing.T) {
	tr, sys := build(t, []uint64{10})
	if err := tr.Insert(sys, 10, []byte("x")); err == nil {
		t.Fatal("duplicate accepted")
	}
	// The rejecting transaction aborted cleanly.
	if err := tr.Check(sys, map[uint64][]byte{10: []byte("vvvvvvvv")}); err != nil {
		t.Fatal(err)
	}
}

// TestParentPointersLazy: parent-pointer stores never create log
// records under SLPMT (they are lazy+log-free); recovery rebuilds them.
func TestParentPointersLazy(t *testing.T) {
	keys := []uint64{5, 3, 8, 1, 4, 7, 9, 2, 6} // forces rotations
	_, sys := build(t, keys)
	sys.DrainLazy()
	img := sys.Mach.Crash()
	// Corrupt every parent pointer in the durable image, then run the
	// structure recovery: it must restore them all from child links.
	tr2 := New()
	var nodes []slpmt.Addr
	var collect func(n slpmt.Addr)
	collect = func(n slpmt.Addr) {
		if n == 0 {
			return
		}
		nodes = append(nodes, n)
		collect(slpmt.Addr(img.ReadU64(uint64(n) + offLeft)))
		collect(slpmt.Addr(img.ReadU64(uint64(n) + offRight)))
	}
	layoutRoot := img.ReadU64(uint64(len(img.Data)) - 4096)
	collect(slpmt.Addr(layoutRoot))
	if len(nodes) != len(keys) {
		t.Fatalf("collected %d nodes", len(nodes))
	}
	for _, n := range nodes {
		img.WriteU64(uint64(n)+offParent, 0xdeadbeef)
	}
	if err := tr2.Recover(img); err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	for _, k := range keys {
		oracle[k] = []byte("vvvvvvvv")
	}
	if err := tr2.CheckDurable(img, oracle); err != nil {
		t.Fatalf("parents not rebuilt: %v", err)
	}
}
