// Package kvstore implements the paper's exemplary PMDK application
// (Table II): a key-value store engine configurable with different
// indexing data structures — btree, ctree and rtree backends, mirroring
// the libpmemobj map examples the paper evaluates as kv-btree, kv-ctree
// and kv-rtree.
//
// The engine stores values out of line in fresh blocks (log-free,
// Pattern 1) and delegates key indexing to the backend. Backends differ
// in their selective-logging profile exactly as the paper observes:
// ctree creates almost only fresh nodes (highest speedup), btree mixes
// fresh splits with logged in-node shifts, and rtree creates several
// nodes per insert and moves key prefixes around (most traffic
// reduction, diluted by its compute weight).
package kvstore

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Value block layout.
const (
	valLen   = 0
	valBytes = 8
)

// index is a key-to-value-pointer map backend operating on simulated
// persistent memory.
type index interface {
	// setup initializes an empty index inside the given transaction.
	setup(tx *slpmt.Tx)
	// insert maps key to the value-block pointer (fails on duplicates).
	insert(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) error
	// lookup finds the value pointer for key.
	lookup(tx *slpmt.Tx, key uint64) (slpmt.Addr, bool)
	// computeCost is the backend's compute-cycles-per-op knob.
	computeCost() uint64
	// walkDurable visits every (key, vptr) pair in the image.
	walkDurable(img *pmem.Image, fn func(key uint64, vptr mem.Addr) error) error
	// nodesDurable returns the index's own node extents in the image.
	nodesDurable(img *pmem.Image) ([]txheap.Extent, error)
	// checkDurable verifies backend-specific structural invariants.
	checkDurable(img *pmem.Image) error
	// recover repairs backend-specific log-free/lazy state post-crash.
	recover(img *pmem.Image) error
}

// KV is the key-value store workload with a pluggable index.
type KV struct {
	name string
	idx  index
}

func init() {
	workloads.Register("kv-btree", func() workloads.Workload {
		return &KV{name: "kv-btree", idx: &btree{}}
	})
	workloads.Register("kv-ctree", func() workloads.Workload {
		return &KV{name: "kv-ctree", idx: &ctree{}}
	})
	workloads.Register("kv-rtree", func() workloads.Workload {
		return &KV{name: "kv-rtree", idx: &rtree{}}
	})
}

// Name implements workloads.Workload.
func (kv *KV) Name() string { return kv.name }

// ComputeCost implements workloads.Workload.
func (kv *KV) ComputeCost() uint64 { return kv.idx.computeCost() }

// Setup implements workloads.Workload.
func (kv *KV) Setup(sys *slpmt.System) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		tx.SetRoot(workloads.RootCount, 0)
		kv.idx.setup(tx)
		return nil
	})
}

// Insert implements workloads.Workload.
func (kv *KV) Insert(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		vb := tx.Alloc(valBytes + uint64(len(value)))
		tx.StoreTU64(vb+valLen, uint64(len(value)), slpmt.LogFree)
		tx.StoreT(vb+valBytes, value, slpmt.LogFree)
		if err := kv.idx.insert(tx, key, vb); err != nil {
			return err
		}
		tx.SetRoot(workloads.RootCount, tx.Root(workloads.RootCount)+1)
		return nil
	})
}

// Get implements workloads.Workload.
func (kv *KV) Get(sys *slpmt.System, key uint64) (val []byte, ok bool) {
	sys.View(func(tx *slpmt.Tx) {
		vb, found := kv.idx.lookup(tx, key)
		if !found {
			return
		}
		vlen := tx.LoadU64(vb + valLen)
		val = make([]byte, vlen)
		tx.Load(vb+valBytes, val)
		ok = true
	})
	return val, ok
}

// Check implements workloads.Workload.
func (kv *KV) Check(sys *slpmt.System, oracle map[uint64][]byte) error {
	var count uint64
	sys.View(func(tx *slpmt.Tx) { count = tx.Root(workloads.RootCount) })
	if count != uint64(len(oracle)) {
		return fmt.Errorf("%s: count %d, oracle %d", kv.name, count, len(oracle))
	}
	return workloads.CheckOracle(sys, kv, oracle)
}

// --- Recovery over the durable image -------------------------------

func readRoot(img *pmem.Image, slot int) uint64 {
	l := mem.DefaultLayout(uint64(len(img.Data)))
	return img.ReadU64(l.RootBase + mem.Addr(slot*8))
}

// Recover implements workloads.Recoverable.
func (kv *KV) Recover(img *pmem.Image) error { return kv.idx.recover(img) }

// Reach implements workloads.Recoverable: index nodes plus every
// reachable value block.
func (kv *KV) Reach(img *pmem.Image) ([]txheap.Extent, error) {
	out, err := kv.idx.nodesDurable(img)
	if err != nil {
		return nil, err
	}
	err = kv.idx.walkDurable(img, func(key uint64, vptr mem.Addr) error {
		vlen := img.ReadU64(vptr + valLen)
		out = append(out, txheap.Extent{Addr: vptr, Size: valBytes + vlen})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CheckDurable implements workloads.Recoverable.
func (kv *KV) CheckDurable(img *pmem.Image, oracle map[uint64][]byte) error {
	if err := kv.idx.checkDurable(img); err != nil {
		return err
	}
	seen := map[uint64]bool{}
	err := kv.idx.walkDurable(img, func(key uint64, vptr mem.Addr) error {
		want, ok := oracle[key]
		if !ok {
			return fmt.Errorf("%s durable: unexpected key %d", kv.name, key)
		}
		if seen[key] {
			return fmt.Errorf("%s durable: duplicate key %d", kv.name, key)
		}
		seen[key] = true
		vlen := img.ReadU64(vptr + valLen)
		if vlen != uint64(len(want)) {
			return fmt.Errorf("%s durable: key %d vlen %d, want %d", kv.name, key, vlen, len(want))
		}
		got := make([]byte, vlen)
		img.Read(vptr+valBytes, got)
		if string(got) != string(want) {
			return fmt.Errorf("%s durable: key %d value mismatch", kv.name, key)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(seen) != len(oracle) {
		return fmt.Errorf("%s durable: %d keys, oracle %d", kv.name, len(seen), len(oracle))
	}
	if count := readRoot(img, workloads.RootCount); count != uint64(len(oracle)) {
		return fmt.Errorf("%s durable: count %d, oracle %d", kv.name, count, len(oracle))
	}
	return nil
}
