package kvstore

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// ctree is a crit-bit (binary radix) tree, mirroring the libpmemobj
// ctree_map example. Internal nodes branch on the most significant bit
// position where their subtrees' keys differ; leaves hold (key, vptr).
// Leaf pointers are tagged with bit 0 (all allocations are 8-byte
// aligned).
//
// Annotation profile: an insert allocates one fresh leaf and one fresh
// internal node (both entirely log-free, Pattern 1) and performs exactly
// one logged pointer update to splice them in — the most
// selective-logging-friendly structure in the suite, which is why
// kv-ctree shows the paper's highest speedup (Figure 14).
type ctree struct{}

// Internal node layout.
const (
	ctBit    = 0  // differing bit index (63 = MSB)
	ctChild0 = 8  // subtree where key bit is 0
	ctChild1 = 16 // subtree where key bit is 1
	ctSize   = 24
)

// Leaf layout.
const (
	ctLeafKey  = 0
	ctLeafVPtr = 8
	ctLeafSize = 16
)

func ctIsLeaf(p uint64) bool        { return p&1 == 1 }
func ctUntag(p uint64) mem.Addr     { return mem.Addr(p &^ 1) }
func ctTagLeaf(a slpmt.Addr) uint64 { return uint64(a) | 1 }

func keyBit(key uint64, bit uint64) uint64 { return (key >> bit) & 1 }

// msbDiff returns the index of the most significant differing bit.
func msbDiff(a, b uint64) uint64 {
	x := a ^ b
	bit := uint64(0)
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			bit = uint64(i)
			break
		}
	}
	return bit
}

func (c *ctree) computeCost() uint64 { return 1 }

func (c *ctree) setup(tx *slpmt.Tx) {
	tx.SetRoot(workloads.RootMain, 0)
}

func (c *ctree) newLeaf(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) slpmt.Addr {
	l := tx.Alloc(ctLeafSize)
	tx.StoreTU64(l+ctLeafKey, key, slpmt.LogFree)
	tx.StoreTU64(l+ctLeafVPtr, uint64(vptr), slpmt.LogFree)
	return l
}

func (c *ctree) insert(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) error {
	root := tx.Root(workloads.RootMain)
	if root == 0 {
		leaf := c.newLeaf(tx, key, vptr)
		tx.SetRoot(workloads.RootMain, ctTagLeaf(leaf))
		return nil
	}
	// Find the nearest leaf to compute the differing bit.
	p := root
	for !ctIsLeaf(p) {
		n := ctUntag(p)
		bit := tx.LoadU64(n + ctBit)
		if keyBit(key, bit) == 0 {
			p = tx.LoadU64(n + ctChild0)
		} else {
			p = tx.LoadU64(n + ctChild1)
		}
	}
	nearKey := tx.LoadU64(ctUntag(p) + ctLeafKey)
	if nearKey == key {
		return fmt.Errorf("ctree: duplicate key %d", key)
	}
	diff := msbDiff(key, nearKey)

	// Re-descend to the splice point: the first edge whose target is a
	// leaf or an internal node with a less significant differing bit.
	var parent slpmt.Addr // 0 = root slot
	parentSide := uint64(0)
	p = root
	for !ctIsLeaf(p) {
		n := ctUntag(p)
		bit := tx.LoadU64(n + ctBit)
		if bit < diff {
			break
		}
		parent = slpmt.Addr(n)
		parentSide = keyBit(key, bit)
		if parentSide == 0 {
			p = tx.LoadU64(n + ctChild0)
		} else {
			p = tx.LoadU64(n + ctChild1)
		}
	}

	// Fresh leaf + fresh internal node: all log-free (Pattern 1).
	leaf := c.newLeaf(tx, key, vptr)
	in := tx.Alloc(ctSize)
	tx.StoreTU64(in+ctBit, diff, slpmt.LogFree)
	if keyBit(key, diff) == 0 {
		tx.StoreTU64(in+ctChild0, ctTagLeaf(leaf), slpmt.LogFree)
		tx.StoreTU64(in+ctChild1, p, slpmt.LogFree)
	} else {
		tx.StoreTU64(in+ctChild1, ctTagLeaf(leaf), slpmt.LogFree)
		tx.StoreTU64(in+ctChild0, p, slpmt.LogFree)
	}

	// Single logged splice.
	switch {
	case parent == 0:
		tx.SetRoot(workloads.RootMain, uint64(in))
	case parentSide == 0:
		tx.StoreU64(parent+ctChild0, uint64(in))
	default:
		tx.StoreU64(parent+ctChild1, uint64(in))
	}
	return nil
}

func (c *ctree) lookup(tx *slpmt.Tx, key uint64) (slpmt.Addr, bool) {
	p := tx.Root(workloads.RootMain)
	if p == 0 {
		return 0, false
	}
	for !ctIsLeaf(p) {
		n := ctUntag(p)
		bit := tx.LoadU64(n + ctBit)
		if keyBit(key, bit) == 0 {
			p = tx.LoadU64(n + ctChild0)
		} else {
			p = tx.LoadU64(n + ctChild1)
		}
	}
	l := ctUntag(p)
	if tx.LoadU64(l+ctLeafKey) != key {
		return 0, false
	}
	return slpmt.Addr(tx.LoadU64(l + ctLeafVPtr)), true
}

func (c *ctree) recover(img *pmem.Image) error { return nil }

func (c *ctree) walkDurable(img *pmem.Image, fn func(uint64, mem.Addr) error) error {
	var walk func(p uint64) error
	walk = func(p uint64) error {
		if p == 0 {
			return nil
		}
		if ctIsLeaf(p) {
			l := ctUntag(p)
			return fn(img.ReadU64(l+ctLeafKey), mem.Addr(img.ReadU64(l+ctLeafVPtr)))
		}
		n := ctUntag(p)
		if err := walk(img.ReadU64(n + ctChild0)); err != nil {
			return err
		}
		return walk(img.ReadU64(n + ctChild1))
	}
	return walk(readRoot(img, workloads.RootMain))
}

func (c *ctree) nodesDurable(img *pmem.Image) ([]txheap.Extent, error) {
	var out []txheap.Extent
	var walk func(p uint64) error
	walk = func(p uint64) error {
		if p == 0 {
			return nil
		}
		if ctIsLeaf(p) {
			out = append(out, txheap.Extent{Addr: ctUntag(p), Size: ctLeafSize})
			return nil
		}
		n := ctUntag(p)
		out = append(out, txheap.Extent{Addr: n, Size: ctSize})
		if err := walk(img.ReadU64(n + ctChild0)); err != nil {
			return err
		}
		return walk(img.ReadU64(n + ctChild1))
	}
	if err := walk(readRoot(img, workloads.RootMain)); err != nil {
		return nil, err
	}
	return out, nil
}

// checkDurable verifies crit-bit invariants: child subtrees agree with
// the branch bit, and bit indices strictly decrease downward.
func (c *ctree) checkDurable(img *pmem.Image) error {
	var walk func(p uint64, parentBit int64) error
	walk = func(p uint64, parentBit int64) error {
		if p == 0 {
			return nil
		}
		if ctIsLeaf(p) {
			return nil
		}
		n := ctUntag(p)
		bit := img.ReadU64(n + ctBit)
		if int64(bit) >= parentBit {
			return fmt.Errorf("ctree durable: bit order violation (%d under %d)", bit, parentBit)
		}
		for side := uint64(0); side <= 1; side++ {
			ch := img.ReadU64(n + ctChild0 + mem.Addr(8*side))
			if ch == 0 {
				return fmt.Errorf("ctree durable: nil child under bit %d", bit)
			}
			// Every key in the subtree must have bit value == side.
			var checkKeys func(q uint64) error
			checkKeys = func(q uint64) error {
				if ctIsLeaf(q) {
					k := img.ReadU64(ctUntag(q) + ctLeafKey)
					if keyBit(k, bit) != side {
						return fmt.Errorf("ctree durable: key %d on wrong side of bit %d", k, bit)
					}
					return nil
				}
				m := ctUntag(q)
				if err := checkKeys(img.ReadU64(m + ctChild0)); err != nil {
					return err
				}
				return checkKeys(img.ReadU64(m + ctChild1))
			}
			if err := checkKeys(ch); err != nil {
				return err
			}
			if err := walk(ch, int64(bit)); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(readRoot(img, workloads.RootMain), 64)
}
