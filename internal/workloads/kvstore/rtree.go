package kvstore

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// rtree is a 16-way radix tree over the key's nibbles (most significant
// first) with path compression, mirroring the libpmemobj rtree_map
// example. Leaf pointers are tagged with bit 0.
//
// Annotation profile: inserts frequently create several fresh nodes at
// once (leaf, branch node, and — on a prefix split — a replacement for
// the shortened node), matching the paper's observation that "kv-rtree
// may create more than one node in one insertion operation", giving it
// the suite's largest write-traffic reduction. Prefix splits move key
// nibbles into fresh nodes by copy-on-write, so the moves are log-free;
// the structure's heavy nibble arithmetic is modelled by a high compute
// cost, which dilutes the speedup exactly as in Figure 14.
type rtree struct{}

// Internal node layout.
const (
	rtPLen   = 0   // number of compressed prefix nibbles (0..15)
	rtPrefix = 8   // packed nibbles, most significant first
	rtKids   = 16  // 16 children (tagged pointers), 128 bytes
	rtSize   = 144 // total
)

// Leaf layout (shared shape with ctree's leaf).
const (
	rtLeafKey  = 0
	rtLeafVPtr = 8
	rtLeafSize = 16
)

const rtNibbles = 16 // nibbles in a 64-bit key

func rtIsLeaf(p uint64) bool    { return p&1 == 1 }
func rtUntag(p uint64) mem.Addr { return mem.Addr(p &^ 1) }
func rtTag(a slpmt.Addr) uint64 { return uint64(a) | 1 }

// nib extracts the i-th nibble of key (0 = most significant).
func nib(key uint64, i int) uint64 { return (key >> uint(60-4*i)) & 0xF }

// prefixNib extracts the j-th nibble of a packed prefix word.
func prefixNib(prefix uint64, j int) uint64 { return (prefix >> uint(60-4*j)) & 0xF }

// packPrefix packs nibbles[0..n) of key starting at nibble index from.
func packPrefix(key uint64, from, n int) uint64 {
	var p uint64
	for j := 0; j < n; j++ {
		p |= nib(key, from+j) << uint(60-4*j)
	}
	return p
}

// shiftPrefix drops the first k nibbles of a packed prefix.
func shiftPrefix(prefix uint64, k int) uint64 { return prefix << uint(4*k) }

func (r *rtree) computeCost() uint64 { return 80 }

func (r *rtree) setup(tx *slpmt.Tx) {
	tx.SetRoot(workloads.RootMain, 0)
}

func (r *rtree) newLeaf(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) slpmt.Addr {
	l := tx.Alloc(rtLeafSize)
	tx.StoreTU64(l+rtLeafKey, key, slpmt.LogFree)
	tx.StoreTU64(l+rtLeafVPtr, uint64(vptr), slpmt.LogFree)
	return l
}

// newNode allocates a zeroed internal node (log-free).
func (r *rtree) newNode(tx *slpmt.Tx, plen int, prefix uint64) slpmt.Addr {
	n := tx.Alloc(rtSize)
	zeros := make([]byte, rtSize)
	tx.StoreT(n, zeros, slpmt.LogFree)
	if plen > 0 {
		tx.StoreTU64(n+rtPLen, uint64(plen), slpmt.LogFree)
		tx.StoreTU64(n+rtPrefix, prefix, slpmt.LogFree)
	}
	return n
}

func rtKid(i uint64) slpmt.Addr { return slpmt.Addr(rtKids + 8*i) }

// setEdge writes the pointer that splices a new subtree in: a logged
// store for existing parents, the root slot otherwise.
func (r *rtree) setEdge(tx *slpmt.Tx, parent slpmt.Addr, slot uint64, p uint64, fresh bool) {
	switch {
	case parent == 0:
		tx.SetRoot(workloads.RootMain, p)
	case fresh:
		tx.StoreTU64(parent+rtKid(slot), p, slpmt.LogFree)
	default:
		tx.StoreU64(parent+rtKid(slot), p)
	}
}

func (r *rtree) insert(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) error {
	var parent slpmt.Addr
	var pslot uint64
	parentFresh := false
	p := tx.Root(workloads.RootMain)
	depth := 0 // nibbles of key consumed so far

	for {
		if p == 0 {
			leaf := r.newLeaf(tx, key, vptr)
			r.setEdge(tx, parent, pslot, rtTag(leaf), parentFresh)
			return nil
		}
		if rtIsLeaf(p) {
			other := tx.LoadU64(rtUntag(p) + rtLeafKey)
			if other == key {
				return fmt.Errorf("rtree: duplicate key %d", key)
			}
			// Branch at the first differing nibble >= depth.
			m := depth
			for nib(key, m) == nib(other, m) {
				m++
			}
			br := r.newNode(tx, m-depth, packPrefix(key, depth, m-depth))
			leaf := r.newLeaf(tx, key, vptr)
			tx.StoreTU64(br+rtKid(nib(key, m)), rtTag(leaf), slpmt.LogFree)
			tx.StoreTU64(br+rtKid(nib(other, m)), p, slpmt.LogFree)
			r.setEdge(tx, parent, pslot, uint64(br), parentFresh)
			return nil
		}

		n := slpmt.Addr(rtUntag(p))
		plen := int(tx.LoadU64(n + rtPLen))
		prefix := tx.LoadU64(n + rtPrefix)
		// Match the compressed prefix.
		m := 0
		for m < plen && nib(key, depth+m) == prefixNib(prefix, m) {
			m++
		}
		if m < plen {
			// Prefix split: fresh branch node above, and a
			// copy-on-write replacement of n with the shortened suffix
			// (the "key movement" of the paper — moved into fresh
			// memory, so log-free; the intact original backs recovery
			// until the logged splice commits).
			br := r.newNode(tx, m, packPrefix(key, depth, m))
			leaf := r.newLeaf(tx, key, vptr)
			rep := r.newNode(tx, plen-m-1, shiftPrefix(prefix, m+1))
			for i := uint64(0); i < 16; i++ {
				tx.CopyU64(rep+rtKid(i), n+rtKid(i), slpmt.LogFree)
			}
			tx.StoreTU64(br+rtKid(nib(key, depth+m)), rtTag(leaf), slpmt.LogFree)
			tx.StoreTU64(br+rtKid(prefixNib(prefix, m)), uint64(rep), slpmt.LogFree)
			r.setEdge(tx, parent, pslot, uint64(br), parentFresh)
			tx.Free(n) // quarantined until commit
			return nil
		}
		depth += plen
		slot := nib(key, depth)
		depth++
		parent = n
		pslot = slot
		parentFresh = false
		p = tx.LoadU64(n + rtKid(slot))
	}
}

func (r *rtree) lookup(tx *slpmt.Tx, key uint64) (slpmt.Addr, bool) {
	p := tx.Root(workloads.RootMain)
	depth := 0
	for {
		if p == 0 {
			return 0, false
		}
		if rtIsLeaf(p) {
			l := slpmt.Addr(rtUntag(p))
			if tx.LoadU64(l+rtLeafKey) != key {
				return 0, false
			}
			return slpmt.Addr(tx.LoadU64(l + rtLeafVPtr)), true
		}
		n := slpmt.Addr(rtUntag(p))
		plen := int(tx.LoadU64(n + rtPLen))
		prefix := tx.LoadU64(n + rtPrefix)
		for m := 0; m < plen; m++ {
			if nib(key, depth+m) != prefixNib(prefix, m) {
				return 0, false
			}
		}
		depth += plen
		p = tx.LoadU64(n + rtKid(nib(key, depth)))
		depth++
	}
}

func (r *rtree) recover(img *pmem.Image) error { return nil }

func (r *rtree) walkDurable(img *pmem.Image, fn func(uint64, mem.Addr) error) error {
	var walk func(p uint64) error
	walk = func(p uint64) error {
		if p == 0 {
			return nil
		}
		if rtIsLeaf(p) {
			l := rtUntag(p)
			return fn(img.ReadU64(l+rtLeafKey), mem.Addr(img.ReadU64(l+rtLeafVPtr)))
		}
		n := rtUntag(p)
		for i := uint64(0); i < 16; i++ {
			if err := walk(img.ReadU64(n + mem.Addr(rtKid(i)))); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(readRoot(img, workloads.RootMain))
}

func (r *rtree) nodesDurable(img *pmem.Image) ([]txheap.Extent, error) {
	var out []txheap.Extent
	var walk func(p uint64) error
	walk = func(p uint64) error {
		if p == 0 {
			return nil
		}
		if rtIsLeaf(p) {
			out = append(out, txheap.Extent{Addr: rtUntag(p), Size: rtLeafSize})
			return nil
		}
		n := rtUntag(p)
		out = append(out, txheap.Extent{Addr: n, Size: rtSize})
		for i := uint64(0); i < 16; i++ {
			if err := walk(img.ReadU64(n + mem.Addr(rtKid(i)))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(readRoot(img, workloads.RootMain)); err != nil {
		return nil, err
	}
	return out, nil
}

// checkDurable verifies that every leaf's key matches the nibble path
// and prefix chain leading to it.
func (r *rtree) checkDurable(img *pmem.Image) error {
	var walk func(p uint64, depth int, acc uint64) error
	walk = func(p uint64, depth int, acc uint64) error {
		if p == 0 {
			return nil
		}
		if rtIsLeaf(p) {
			key := img.ReadU64(rtUntag(p) + rtLeafKey)
			// The consumed nibbles must match the key's top nibbles.
			for j := 0; j < depth; j++ {
				if nib(key, j) != nib(acc, j) {
					return fmt.Errorf("rtree durable: key %#x under wrong path at nibble %d", key, j)
				}
			}
			return nil
		}
		n := rtUntag(p)
		plen := int(img.ReadU64(n + rtPLen))
		if depth+plen >= rtNibbles {
			return fmt.Errorf("rtree durable: prefix overruns key length at depth %d", depth)
		}
		prefix := img.ReadU64(n + rtPrefix)
		acc2 := acc
		for m := 0; m < plen; m++ {
			acc2 |= prefixNib(prefix, m) << uint(60-4*(depth+m))
		}
		kids := 0
		for i := uint64(0); i < 16; i++ {
			ch := img.ReadU64(n + mem.Addr(rtKid(i)))
			if ch == 0 {
				continue
			}
			kids++
			acc3 := acc2 | (i << uint(60-4*(depth+plen)))
			if err := walk(ch, depth+plen+1, acc3); err != nil {
				return err
			}
		}
		if kids < 2 {
			return fmt.Errorf("rtree durable: under-populated branch (%d children) at depth %d", kids, depth)
		}
		return nil
	}
	return walk(readRoot(img, workloads.RootMain), 0, 0)
}
