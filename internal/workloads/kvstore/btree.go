package kvstore

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// btree is a B-tree of minimum degree btreeT (up to 2t-1 = 7 keys and 2t
// = 8 children per node), inserted with single-pass preemptive splits
// (CLRS). It mirrors the libpmemobj btree_map example's 8-slot nodes.
//
// Annotation profile: node splits copy the upper half of a full node
// into a fresh node — log-free (Pattern 1). In-node shifts to make room
// move data whose source is overwritten in the same transaction, so
// they stay plain logged stores; this mix is why kv-btree sits between
// ctree (almost all fresh stores) and the kernels in the paper's
// Figure 14.
type btree struct{}

const btreeT = 4 // minimum degree

const (
	btMaxKeys = 2*btreeT - 1 // 7
	btMaxKids = 2 * btreeT   // 8
)

// Node layout.
const (
	btN    = 0
	btLeaf = 8
	btKeys = 16                   // 7 * 8 = 56 bytes
	btVals = btKeys + 8*btMaxKeys // 72
	btKids = btVals + 8*btMaxKeys // 128
	btSize = btKids + 8*btMaxKids // 192
)

func btKey(i int) slpmt.Addr { return slpmt.Addr(btKeys + 8*i) }
func btVal(i int) slpmt.Addr { return slpmt.Addr(btVals + 8*i) }
func btKid(i int) slpmt.Addr { return slpmt.Addr(btKids + 8*i) }

func (b *btree) computeCost() uint64 { return 2 }

// newNode allocates and zero-initializes a fresh node (all log-free).
func (b *btree) newNode(tx *slpmt.Tx, leaf bool) slpmt.Addr {
	n := tx.Alloc(btSize)
	zeros := make([]byte, btSize)
	tx.StoreT(n, zeros, slpmt.LogFree)
	if leaf {
		tx.StoreTU64(n+btLeaf, 1, slpmt.LogFree)
	}
	return n
}

func (b *btree) setup(tx *slpmt.Tx) {
	root := b.newNode(tx, true)
	tx.SetRoot(workloads.RootMain, uint64(root))
}

func (b *btree) insert(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) error {
	root := slpmt.Addr(tx.Root(workloads.RootMain))
	if tx.LoadU64(root+btN) == btMaxKeys {
		// Grow: fresh root above the full old root.
		nr := b.newNode(tx, false)
		tx.StoreTU64(nr+btKid(0), uint64(root), slpmt.LogFree)
		b.splitChild(tx, nr, 0, root)
		tx.SetRoot(workloads.RootMain, uint64(nr))
		root = nr
	}
	return b.insertNonFull(tx, root, key, vptr)
}

// splitChild splits the full child y (= x.children[i]) around its median
// key: the upper half moves into a fresh node z (log-free copies), the
// median moves up into x (plain: x is an existing node).
func (b *btree) splitChild(tx *slpmt.Tx, x slpmt.Addr, i int, y slpmt.Addr) {
	leaf := tx.LoadU64(y+btLeaf) == 1
	z := b.newNode(tx, leaf)

	// Upper t-1 keys/values of y move to z: fresh destination.
	for j := 0; j < btreeT-1; j++ {
		tx.CopyU64(z+btKey(j), y+btKey(j+btreeT), slpmt.LogFree)
		tx.CopyU64(z+btVal(j), y+btVal(j+btreeT), slpmt.LogFree)
	}
	if !leaf {
		for j := 0; j < btreeT; j++ {
			tx.CopyU64(z+btKid(j), y+btKid(j+btreeT), slpmt.LogFree)
		}
	}
	tx.StoreTU64(z+btN, btreeT-1, slpmt.LogFree)

	// Shrink y (logged; the stale upper entries become invisible).
	tx.StoreU64(y+btN, btreeT-1)

	// Make room in x: shift children and keys right (logged moves).
	xn := int(tx.LoadU64(x + btN))
	for j := xn; j > i; j-- {
		tx.CopyU64(x+btKid(j+1), x+btKid(j), slpmt.Plain)
	}
	tx.StoreU64(x+btKid(i+1), uint64(z))
	for j := xn - 1; j >= i; j-- {
		tx.CopyU64(x+btKey(j+1), x+btKey(j), slpmt.Plain)
		tx.CopyU64(x+btVal(j+1), x+btVal(j), slpmt.Plain)
	}
	// Median of y moves up into x.
	tx.CopyU64(x+btKey(i), y+btKey(btreeT-1), slpmt.Plain)
	tx.CopyU64(x+btVal(i), y+btVal(btreeT-1), slpmt.Plain)
	tx.StoreU64(x+btN, uint64(xn+1))
}

func (b *btree) insertNonFull(tx *slpmt.Tx, x slpmt.Addr, key uint64, vptr slpmt.Addr) error {
	for {
		n := int(tx.LoadU64(x + btN))
		if tx.LoadU64(x+btLeaf) == 1 {
			// Shift larger items right and place.
			i := n - 1
			for i >= 0 {
				k := tx.LoadU64(x + btKey(i))
				if k == key {
					return fmt.Errorf("btree: duplicate key %d", key)
				}
				if k < key {
					break
				}
				tx.CopyU64(x+btKey(i+1), x+btKey(i), slpmt.Plain)
				tx.CopyU64(x+btVal(i+1), x+btVal(i), slpmt.Plain)
				i--
			}
			tx.StoreU64(x+btKey(i+1), key)
			tx.StoreU64(x+btVal(i+1), uint64(vptr))
			tx.StoreU64(x+btN, uint64(n+1))
			return nil
		}
		// Internal: find child, split preemptively if full.
		i := 0
		for i < n {
			k := tx.LoadU64(x + btKey(i))
			if k == key {
				return fmt.Errorf("btree: duplicate key %d", key)
			}
			if key < k {
				break
			}
			i++
		}
		c := slpmt.Addr(tx.LoadU64(x + btKid(i)))
		if tx.LoadU64(c+btN) == btMaxKeys {
			b.splitChild(tx, x, i, c)
			mid := tx.LoadU64(x + btKey(i))
			if key == mid {
				return fmt.Errorf("btree: duplicate key %d", key)
			}
			if key > mid {
				i++
			}
			c = slpmt.Addr(tx.LoadU64(x + btKid(i)))
		}
		x = c
	}
}

func (b *btree) lookup(tx *slpmt.Tx, key uint64) (slpmt.Addr, bool) {
	x := slpmt.Addr(tx.Root(workloads.RootMain))
	for x != 0 {
		n := int(tx.LoadU64(x + btN))
		i := 0
		for i < n {
			k := tx.LoadU64(x + btKey(i))
			if k == key {
				return slpmt.Addr(tx.LoadU64(x + btVal(i))), true
			}
			if key < k {
				break
			}
			i++
		}
		if tx.LoadU64(x+btLeaf) == 1 {
			return 0, false
		}
		x = slpmt.Addr(tx.LoadU64(x + btKid(i)))
	}
	return 0, false
}

// recover: the btree uses no lazy persistency; fresh split nodes either
// became reachable through logged parent updates or are garbage.
func (b *btree) recover(img *pmem.Image) error { return nil }

func (b *btree) walkDurable(img *pmem.Image, fn func(uint64, mem.Addr) error) error {
	var walk func(x mem.Addr) error
	walk = func(x mem.Addr) error {
		n := int(img.ReadU64(x + btN))
		leaf := img.ReadU64(x+btLeaf) == 1
		for i := 0; i < n; i++ {
			if !leaf {
				if err := walk(mem.Addr(img.ReadU64(x + mem.Addr(btKid(i))))); err != nil {
					return err
				}
			}
			if err := fn(img.ReadU64(x+mem.Addr(btKey(i))), mem.Addr(img.ReadU64(x+mem.Addr(btVal(i))))); err != nil {
				return err
			}
		}
		if !leaf {
			return walk(mem.Addr(img.ReadU64(x + mem.Addr(btKid(n)))))
		}
		return nil
	}
	return walk(mem.Addr(readRoot(img, workloads.RootMain)))
}

func (b *btree) nodesDurable(img *pmem.Image) ([]txheap.Extent, error) {
	var out []txheap.Extent
	var walk func(x mem.Addr) error
	walk = func(x mem.Addr) error {
		out = append(out, txheap.Extent{Addr: x, Size: btSize})
		if img.ReadU64(x+btLeaf) == 1 {
			return nil
		}
		n := int(img.ReadU64(x + btN))
		for i := 0; i <= n; i++ {
			if err := walk(mem.Addr(img.ReadU64(x + mem.Addr(btKid(i))))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(mem.Addr(readRoot(img, workloads.RootMain))); err != nil {
		return nil, err
	}
	return out, nil
}

func (b *btree) checkDurable(img *pmem.Image) error {
	root := mem.Addr(readRoot(img, workloads.RootMain))
	depth := -1
	var walk func(x mem.Addr, lo, hi uint64, d int) error
	walk = func(x mem.Addr, lo, hi uint64, d int) error {
		n := int(img.ReadU64(x + btN))
		leaf := img.ReadU64(x+btLeaf) == 1
		if n > btMaxKeys {
			return fmt.Errorf("btree durable: overfull node (%d keys)", n)
		}
		if x != root && n < btreeT-1 {
			return fmt.Errorf("btree durable: underfull node (%d keys)", n)
		}
		prev := lo
		for i := 0; i < n; i++ {
			k := img.ReadU64(x + mem.Addr(btKey(i)))
			if k <= prev || k >= hi {
				return fmt.Errorf("btree durable: key order violation at %d", k)
			}
			prev = k
		}
		if leaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("btree durable: uneven leaf depth")
			}
			return nil
		}
		cl := lo
		for i := 0; i <= n; i++ {
			ch := hi
			if i < n {
				ch = img.ReadU64(x + mem.Addr(btKey(i)))
			}
			if err := walk(mem.Addr(img.ReadU64(x+mem.Addr(btKid(i)))), cl, ch, d+1); err != nil {
				return err
			}
			cl = ch
		}
		return nil
	}
	return walk(root, 0, ^uint64(0), 0)
}
