package kvstore

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

// mutableIndex is implemented by backends that support value updates
// and removals.
type mutableIndex interface {
	// updateVPtr points key at a new value block, returning the old one.
	updateVPtr(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) (old slpmt.Addr, err error)
	// remove unlinks key, returning its value block. Backend node
	// memory is freed inside; the caller frees the value block.
	remove(tx *slpmt.Tx, key uint64) (vptr slpmt.Addr, err error)
}

// UpdateValue implements workloads.Mutable: a fresh value block
// (log-free), one logged pointer update in the index, and the old block
// quarantined until commit.
func (kv *KV) UpdateValue(sys *slpmt.System, key uint64, value []byte) error {
	mi, ok := kv.idx.(mutableIndex)
	if !ok {
		return workloads.ErrUnsupported
	}
	return sys.Update(func(tx *slpmt.Tx) error {
		vb := tx.Alloc(valBytes + uint64(len(value)))
		tx.StoreTU64(vb+valLen, uint64(len(value)), slpmt.LogFree)
		tx.StoreT(vb+valBytes, value, slpmt.LogFree)
		old, err := mi.updateVPtr(tx, key, vb)
		if err != nil {
			return err
		}
		tx.Free(old)
		return nil
	})
}

// Delete implements workloads.Mutable.
func (kv *KV) Delete(sys *slpmt.System, key uint64) error {
	mi, ok := kv.idx.(mutableIndex)
	if !ok {
		return workloads.ErrUnsupported
	}
	err := sys.Update(func(tx *slpmt.Tx) error {
		vb, err := mi.remove(tx, key)
		if err != nil {
			return err
		}
		tx.Free(vb)
		tx.SetRoot(workloads.RootCount, tx.Root(workloads.RootCount)-1)
		return nil
	})
	return err
}

// --- btree ----------------------------------------------------------

func (b *btree) updateVPtr(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) (slpmt.Addr, error) {
	x := slpmt.Addr(tx.Root(workloads.RootMain))
	for x != 0 {
		n := int(tx.LoadU64(x + btN))
		i := 0
		for i < n {
			k := tx.LoadU64(x + btKey(i))
			if k == key {
				old := slpmt.Addr(tx.LoadU64(x + btVal(i)))
				tx.StoreU64(x+btVal(i), uint64(vptr))
				return old, nil
			}
			if key < k {
				break
			}
			i++
		}
		if tx.LoadU64(x+btLeaf) == 1 {
			break
		}
		x = slpmt.Addr(tx.LoadU64(x + btKid(i)))
	}
	return 0, fmt.Errorf("btree: key %d not found", key)
}

// remove is not implemented for the btree backend (merge/borrow
// rebalancing is out of scope; ctree and rtree cover index removal).
func (b *btree) remove(tx *slpmt.Tx, key uint64) (slpmt.Addr, error) {
	return 0, workloads.ErrUnsupported
}

// --- ctree ----------------------------------------------------------

func (c *ctree) updateVPtr(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) (slpmt.Addr, error) {
	p := tx.Root(workloads.RootMain)
	if p == 0 {
		return 0, fmt.Errorf("ctree: key %d not found", key)
	}
	for !ctIsLeaf(p) {
		n := ctUntag(p)
		if keyBit(key, tx.LoadU64(n+ctBit)) == 0 {
			p = tx.LoadU64(n + ctChild0)
		} else {
			p = tx.LoadU64(n + ctChild1)
		}
	}
	l := slpmt.Addr(ctUntag(p))
	if tx.LoadU64(l+ctLeafKey) != key {
		return 0, fmt.Errorf("ctree: key %d not found", key)
	}
	old := slpmt.Addr(tx.LoadU64(l + ctLeafVPtr))
	tx.StoreU64(l+ctLeafVPtr, uint64(vptr))
	return old, nil
}

// remove unlinks the leaf and its branch node: the grandparent's child
// pointer is redirected to the sibling subtree (one logged store), and
// both freed nodes are quarantined until commit.
func (c *ctree) remove(tx *slpmt.Tx, key uint64) (slpmt.Addr, error) {
	root := tx.Root(workloads.RootMain)
	if root == 0 {
		return 0, fmt.Errorf("ctree: key %d not found", key)
	}
	var grand slpmt.Addr // 0 = root slot holds parent
	grandSide := uint64(0)
	var parent slpmt.Addr
	parentSide := uint64(0)
	p := root
	for !ctIsLeaf(p) {
		n := slpmt.Addr(ctUntag(p))
		side := keyBit(key, tx.LoadU64(n+ctBit))
		grand, grandSide = parent, parentSide
		parent, parentSide = n, side
		p = tx.LoadU64(n + ctChild0 + slpmt.Addr(8*side))
	}
	leaf := slpmt.Addr(ctUntag(p))
	if tx.LoadU64(leaf+ctLeafKey) != key {
		return 0, fmt.Errorf("ctree: key %d not found", key)
	}
	vb := slpmt.Addr(tx.LoadU64(leaf + ctLeafVPtr))
	switch {
	case parent == 0:
		// The leaf was the whole tree.
		tx.SetRoot(workloads.RootMain, 0)
	default:
		sibling := tx.LoadU64(parent + ctChild0 + slpmt.Addr(8*(1-parentSide)))
		if grand == 0 {
			tx.SetRoot(workloads.RootMain, sibling)
		} else {
			tx.StoreU64(grand+ctChild0+slpmt.Addr(8*grandSide), sibling)
		}
		tx.Free(parent)
	}
	tx.Free(leaf)
	return vb, nil
}

// --- rtree ----------------------------------------------------------

func (r *rtree) updateVPtr(tx *slpmt.Tx, key uint64, vptr slpmt.Addr) (slpmt.Addr, error) {
	p := tx.Root(workloads.RootMain)
	depth := 0
	for {
		if p == 0 {
			return 0, fmt.Errorf("rtree: key %d not found", key)
		}
		if rtIsLeaf(p) {
			l := slpmt.Addr(rtUntag(p))
			if tx.LoadU64(l+rtLeafKey) != key {
				return 0, fmt.Errorf("rtree: key %d not found", key)
			}
			old := slpmt.Addr(tx.LoadU64(l + rtLeafVPtr))
			tx.StoreU64(l+rtLeafVPtr, uint64(vptr))
			return old, nil
		}
		n := slpmt.Addr(rtUntag(p))
		plen := int(tx.LoadU64(n + rtPLen))
		prefix := tx.LoadU64(n + rtPrefix)
		for m := 0; m < plen; m++ {
			if nib(key, depth+m) != prefixNib(prefix, m) {
				return 0, fmt.Errorf("rtree: key %d not found", key)
			}
		}
		depth += plen
		p = tx.LoadU64(n + rtKid(nib(key, depth)))
		depth++
	}
}

// remove unlinks the leaf; a branch left with a single child collapses:
// the child is spliced up, and if it is an internal node, a fresh
// replacement with the merged prefix takes its place (copy-on-write,
// log-free — the same technique as insert's prefix split).
func (r *rtree) remove(tx *slpmt.Tx, key uint64) (slpmt.Addr, error) {
	var parent slpmt.Addr // the branch holding the leaf (0 = root slot)
	var pslot uint64
	var grand slpmt.Addr // the branch holding parent (0 = root slot)
	var gslot uint64
	p := tx.Root(workloads.RootMain)
	depth := 0
	for {
		if p == 0 {
			return 0, fmt.Errorf("rtree: key %d not found", key)
		}
		if rtIsLeaf(p) {
			break
		}
		n := slpmt.Addr(rtUntag(p))
		plen := int(tx.LoadU64(n + rtPLen))
		prefix := tx.LoadU64(n + rtPrefix)
		for m := 0; m < plen; m++ {
			if nib(key, depth+m) != prefixNib(prefix, m) {
				return 0, fmt.Errorf("rtree: key %d not found", key)
			}
		}
		depth += plen
		slot := nib(key, depth)
		depth++
		grand, gslot = parent, pslot
		parent, pslot = n, slot
		p = tx.LoadU64(n + rtKid(slot))
	}
	leaf := slpmt.Addr(rtUntag(p))
	if tx.LoadU64(leaf+rtLeafKey) != key {
		return 0, fmt.Errorf("rtree: key %d not found", key)
	}
	vb := slpmt.Addr(tx.LoadU64(leaf + rtLeafVPtr))
	if parent == 0 {
		tx.SetRoot(workloads.RootMain, 0)
		tx.Free(leaf)
		return vb, nil
	}
	// Clear the leaf's slot (logged) and count the remaining children.
	tx.StoreU64(parent+rtKid(pslot), 0)
	remaining := uint64(0)
	var lastSlot uint64
	for i := uint64(0); i < 16; i++ {
		if tx.LoadU64(parent+rtKid(i)) != 0 {
			remaining++
			lastSlot = i
		}
	}
	if remaining != 1 {
		tx.Free(leaf)
		return vb, nil
	}
	// Collapse: splice the single remaining child up.
	child := tx.LoadU64(parent + rtKid(lastSlot))
	var up uint64
	if rtIsLeaf(child) {
		up = child
	} else {
		// Merge prefixes: parent.prefix + lastSlot + child.prefix into
		// a fresh replacement of the child (log-free copy-on-write).
		cn := slpmt.Addr(rtUntag(child))
		pplen := int(tx.LoadU64(parent + rtPLen))
		pprefix := tx.LoadU64(parent + rtPrefix)
		cplen := int(tx.LoadU64(cn + rtPLen))
		cprefix := tx.LoadU64(cn + rtPrefix)
		merged := pprefix | (lastSlot << uint(60-4*pplen)) | (cprefix >> uint(4*(pplen+1)))
		rep := r.newNode(tx, pplen+1+cplen, merged)
		for i := uint64(0); i < 16; i++ {
			tx.CopyU64(rep+rtKid(i), cn+rtKid(i), slpmt.LogFree)
		}
		up = uint64(rep)
		tx.Free(cn)
	}
	if grand == 0 {
		tx.SetRoot(workloads.RootMain, up)
	} else {
		tx.StoreU64(grand+rtKid(gslot), up)
	}
	tx.Free(parent)
	tx.Free(leaf)
	return vb, nil
}
