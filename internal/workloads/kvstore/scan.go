package kvstore

import (
	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

// rangerIndex is implemented by backends whose layout yields keys in
// ascending unsigned order.
type rangerIndex interface {
	scan(tx *slpmt.Tx, from, to uint64, fn func(key uint64, vptr slpmt.Addr) bool)
}

// Scan implements workloads.Ranger for backends with ordered layouts
// (all three: the btree is sorted; the crit-bit and radix trees branch
// on most-significant bits first, so child-0-before-child-1 order is
// numeric order).
func (kv *KV) Scan(sys *slpmt.System, from, to uint64, fn func(uint64, []byte) bool) error {
	ri, ok := kv.idx.(rangerIndex)
	if !ok {
		return workloads.ErrUnsupported
	}
	sys.View(func(tx *slpmt.Tx) {
		ri.scan(tx, from, to, func(key uint64, vptr slpmt.Addr) bool {
			vlen := tx.LoadU64(vptr + valLen)
			v := make([]byte, vlen)
			tx.Load(vptr+valBytes, v)
			return fn(key, v)
		})
	})
	return nil
}

func (b *btree) scan(tx *slpmt.Tx, from, to uint64, fn func(uint64, slpmt.Addr) bool) {
	stopped := false
	var walk func(x slpmt.Addr)
	walk = func(x slpmt.Addr) {
		if stopped {
			return
		}
		n := int(tx.LoadU64(x + btN))
		leaf := tx.LoadU64(x+btLeaf) == 1
		for i := 0; i <= n && !stopped; i++ {
			if !leaf {
				// Child i covers keys below key[i] (or above key[n-1]
				// for the last child): prune with the separators.
				lo := uint64(0)
				if i > 0 {
					lo = tx.LoadU64(x + btKey(i-1))
				}
				hi := ^uint64(0)
				if i < n {
					hi = tx.LoadU64(x + btKey(i))
				}
				if hi >= from && lo <= to {
					walk(slpmt.Addr(tx.LoadU64(x + btKid(i))))
				}
			}
			if stopped || i == n {
				break
			}
			k := tx.LoadU64(x + btKey(i))
			if k >= from && k <= to {
				if !fn(k, slpmt.Addr(tx.LoadU64(x+btVal(i)))) {
					stopped = true
				}
			}
			if k > to {
				stopped = true
			}
		}
	}
	walk(slpmt.Addr(tx.Root(workloads.RootMain)))
}

func (c *ctree) scan(tx *slpmt.Tx, from, to uint64, fn func(uint64, slpmt.Addr) bool) {
	stopped := false
	var walk func(p uint64)
	walk = func(p uint64) {
		if p == 0 || stopped {
			return
		}
		if ctIsLeaf(p) {
			l := ctUntag(p)
			k := tx.LoadU64(slpmt.Addr(l) + ctLeafKey)
			if k >= from && k <= to {
				if !fn(k, slpmt.Addr(tx.LoadU64(slpmt.Addr(l)+ctLeafVPtr))) {
					stopped = true
				}
			}
			return
		}
		n := slpmt.Addr(ctUntag(p))
		walk(tx.LoadU64(n + ctChild0))
		walk(tx.LoadU64(n + ctChild1))
	}
	walk(tx.Root(workloads.RootMain))
}

func (r *rtree) scan(tx *slpmt.Tx, from, to uint64, fn func(uint64, slpmt.Addr) bool) {
	stopped := false
	var walk func(p uint64)
	walk = func(p uint64) {
		if p == 0 || stopped {
			return
		}
		if rtIsLeaf(p) {
			l := slpmt.Addr(rtUntag(p))
			k := tx.LoadU64(l + rtLeafKey)
			if k >= from && k <= to {
				if !fn(k, slpmt.Addr(tx.LoadU64(l+rtLeafVPtr))) {
					stopped = true
				}
			}
			return
		}
		n := slpmt.Addr(rtUntag(p))
		for i := uint64(0); i < 16 && !stopped; i++ {
			walk(tx.LoadU64(n + rtKid(i)))
		}
	}
	walk(tx.Root(workloads.RootMain))
}
