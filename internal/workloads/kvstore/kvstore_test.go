package kvstore

import (
	"testing"
	"testing/quick"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/workloads"
)

// --- pure helper properties -----------------------------------------

func TestNibbleHelpers(t *testing.T) {
	key := uint64(0x123456789abcdef0)
	if nib(key, 0) != 0x1 || nib(key, 15) != 0x0 || nib(key, 7) != 0x8 {
		t.Error("nib extraction broken")
	}
	// packPrefix/prefixNib roundtrip.
	f := func(key uint64, from8, n8 uint8) bool {
		from := int(from8 % 12)
		n := int(n8%4) + 1
		p := packPrefix(key, from, n)
		for j := 0; j < n; j++ {
			if prefixNib(p, j) != nib(key, from+j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// shiftPrefix drops leading nibbles.
	p := packPrefix(key, 0, 6)
	s := shiftPrefix(p, 2)
	for j := 0; j < 4; j++ {
		if prefixNib(s, j) != nib(key, 2+j) {
			t.Fatalf("shiftPrefix broken at %d", j)
		}
	}
}

func TestMsbDiff(t *testing.T) {
	if msbDiff(0, 1) != 0 || msbDiff(0, 1<<63) != 63 || msbDiff(0b1000, 0b1100) != 2 {
		t.Error("msbDiff broken")
	}
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		d := msbDiff(a, b)
		// Bits above d agree; bit d differs.
		if d < 63 && (a>>(d+1)) != (b>>(d+1)) {
			return false
		}
		return keyBit(a, d) != keyBit(b, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaggedPointers(t *testing.T) {
	a := slpmt.Addr(0x1230)
	if !ctIsLeaf(ctTagLeaf(a)) || ctUntag(ctTagLeaf(a)) != 0x1230 {
		t.Error("ctree tagging broken")
	}
	if !rtIsLeaf(rtTag(a)) || rtUntag(rtTag(a)) != 0x1230 {
		t.Error("rtree tagging broken")
	}
	if ctIsLeaf(uint64(a)) {
		t.Error("untagged pointer classified as leaf")
	}
}

// --- structural unit tests over small key sets ------------------------

// insertKeys builds an index with the given keys (values = key bytes).
func insertKeys(t *testing.T, name string, keys []uint64) (*KV, *slpmt.System) {
	t.Helper()
	kv := workloads.MustNew(name).(*KV)
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := kv.Setup(sys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		v := make([]byte, 16)
		for i := range v {
			v[i] = byte(k >> uint(8*(i%8)))
		}
		if err := kv.Insert(sys, k, v); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	return kv, sys
}

func TestBtreeSplitsKeepOrder(t *testing.T) {
	// Sequential keys force a split chain through every level.
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	kv, sys := insertKeys(t, "kv-btree", keys)
	sys.DrainLazy()
	img := sys.Mach.Crash()
	b := kv.idx.(*btree)
	if err := b.checkDurable(img); err != nil {
		t.Fatal(err)
	}
	// In-order walk yields sorted keys.
	prev := uint64(0)
	var got []uint64
	if err := b.walkDurable(img, func(k uint64, _ mem.Addr) error {
		got = append(got, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, k := range got {
		if k <= prev {
			t.Fatalf("walk out of order at %d", k)
		}
		prev = k
	}
	if len(got) != len(keys) {
		t.Fatalf("walked %d keys, want %d", len(got), len(keys))
	}
}

func TestCtreeBitDiscrimination(t *testing.T) {
	// Keys differing in single bits exercise the crit-bit ordering.
	keys := []uint64{1, 2, 3, 1 << 40, 1<<40 | 1, 1 << 63, 1<<63 | 1<<40}
	kv, sys := insertKeys(t, "kv-ctree", keys)
	sys.DrainLazy()
	img := sys.Mach.Crash()
	c := kv.idx.(*ctree)
	if err := c.checkDurable(img); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := kv.Get(sys, k); !ok {
			t.Fatalf("key %d not found", k)
		}
	}
	if _, ok := kv.Get(sys, 4); ok {
		t.Fatal("phantom key found")
	}
}

func TestRtreePrefixSplit(t *testing.T) {
	// Keys sharing long nibble prefixes force compressed-edge splits.
	keys := []uint64{
		0x1111111111111111,
		0x1111111111111112, // split at the last nibble
		0x1111111100000000, // split mid-prefix
		0x2222222222222222,
	}
	kv, sys := insertKeys(t, "kv-rtree", keys)
	sys.DrainLazy()
	img := sys.Mach.Crash()
	r := kv.idx.(*rtree)
	if err := r.checkDurable(img); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := kv.Get(sys, k); !ok {
			t.Fatalf("key %#x not found", k)
		}
	}
	if _, ok := kv.Get(sys, 0x1111111111111113); ok {
		t.Fatal("phantom key found")
	}
}

func TestRtreeCollapseOnDelete(t *testing.T) {
	keys := []uint64{0x1111111111111111, 0x1111111111111112, 0x1111111111111113}
	kv, sys := insertKeys(t, "kv-rtree", keys)
	if err := kv.Delete(sys, keys[1]); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete(sys, keys[2]); err != nil {
		t.Fatal(err)
	}
	sys.DrainLazy()
	img := sys.Mach.Crash()
	if err := kv.idx.(*rtree).checkDurable(img); err != nil {
		t.Fatalf("collapse left an invalid tree: %v", err)
	}
	if _, ok := kv.Get(sys, keys[0]); !ok {
		t.Fatal("survivor lost")
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	for _, name := range []string{"kv-btree", "kv-ctree", "kv-rtree"} {
		kv, sys := insertKeys(t, name, []uint64{7})
		if err := kv.Insert(sys, 7, []byte("x")); err == nil {
			t.Errorf("%s accepted a duplicate", name)
		}
	}
}
