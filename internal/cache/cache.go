// Package cache implements the set-associative caches of the simulated
// hierarchy, extended with the per-line SLPMT metadata of Figure 5:
//
//   - a persist bit: the line must reach persistent memory at transaction
//     commit (eager persistency);
//   - a log bitmap: which parts of the line already have a log record
//     (8 bits, one per 8-byte word, in L1; 2 bits, one per 32-byte half,
//     in L2; none in L3);
//   - a 2-bit transaction ID: which transaction last updated the line,
//     used by lazy persistency to detect cross-transaction accesses.
//
// The hierarchy is managed as a move (victim) hierarchy: a line lives in
// exactly one level at a time, so the SLPMT metadata is single-homed.
// On an L1 eviction the 8 L1 log bits are folded into 2 L2 bits by
// conjunction; on a fetch from L2 into L1 they are replicated back
// (Figure 5). L3 carries no SLPMT metadata: lines fetched from L3 start
// with zeroed bits, which can cause benign duplicate logging (§III-B1).
//
// Lines also carry a MESI coherence state. The single-core evaluation
// exercises only the E/M states; the Bus type in this package provides
// the multi-cache invalidation protocol used by the coherence tests and
// by transaction aborts (§V-B).
package cache

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/mem"
)

// State is a MESI coherence state.
type State uint8

const (
	// Invalid: the line holds no data.
	Invalid State = iota
	// Shared: clean, possibly present in other caches.
	Shared
	// Exclusive: clean, present only here.
	Exclusive
	// Modified: dirty, present only here.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Line is one cache line's tag-array entry. Data contents live in the
// machine's functional memory image; the cache tracks placement and
// metadata only.
type Line struct {
	// Addr is the line-aligned address.
	Addr mem.Addr
	// State is the MESI coherence state. Any state other than Invalid
	// means present.
	State State
	// Persist is the SLPMT persist bit.
	Persist bool
	// LogBits is the SLPMT log bitmap. In L1 all 8 bits are meaningful
	// (bit i covers word i); in L2 only bits 0-1 (bit j covers bytes
	// 32j..32j+31); in L3 the field is unused and always zero.
	LogBits uint8
	// TxID is the 2-bit transaction ID of the updating transaction.
	TxID uint8
	// lru is the replacement timestamp.
	lru uint64
}

// Dirty reports whether the line holds data newer than memory.
func (l *Line) Dirty() bool { return l.State == Modified }

// ClearMeta resets the SLPMT metadata (persist/log/txid), leaving the
// coherence state intact.
func (l *Line) ClearMeta() {
	l.Persist = false
	l.LogBits = 0
	l.TxID = 0
}

// L1LogMaskFull is the LogBits value of a fully logged L1 line.
const L1LogMaskFull = 0xFF

// L2LogMaskFull is the LogBits value of a fully logged L2 line.
const L2LogMaskFull = 0x03

// FoldLogBits converts an 8-bit L1 word bitmap into the 2-bit L2 bitmap:
// each L2 bit is the logical conjunction of the corresponding four L1
// bits (Figure 5). Information is lost when a 32-byte half is only
// partially logged.
func FoldLogBits(l1 uint8) uint8 {
	var l2 uint8
	if l1&0x0F == 0x0F {
		l2 |= 1
	}
	if l1&0xF0 == 0xF0 {
		l2 |= 2
	}
	return l2
}

// ReplicateLogBits converts a 2-bit L2 bitmap back to the 8-bit L1
// bitmap, replicating each L2 bit into its four words.
func ReplicateLogBits(l2 uint8) uint8 {
	var l1 uint8
	if l2&1 != 0 {
		l1 |= 0x0F
	}
	if l2&2 != 0 {
		l1 |= 0xF0
	}
	return l1
}

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	// LatencyCycles is the access (hit) latency of this level.
	LatencyCycles uint64
}

// Cache is one set-associative level. Not safe for concurrent use.
type Cache struct {
	cfg      Config
	sets     [][]Line
	setCount int
	setMask  uint64
	tick     uint64

	// counters maintained for introspection; the machine layer mirrors
	// the interesting ones into stats.Counters.
	hits, misses, evicts uint64
}

// New builds a cache level. SizeBytes must be a multiple of
// Ways*LineSize and the resulting set count must be a power of two.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("cache: invalid geometry")
	}
	lines := cfg.SizeBytes / mem.LineSize
	if lines%cfg.Ways != 0 {
		panic("cache: size not divisible by ways")
	}
	setCount := lines / cfg.Ways
	if setCount&(setCount-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, setCount))
	}
	sets := make([][]Line, setCount)
	backing := make([]Line, lines)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setCount: setCount,
		setMask:  uint64(setCount - 1),
	}
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() uint64 { return c.cfg.LatencyCycles }

func (c *Cache) set(addr mem.Addr) []Line {
	return c.sets[(addr>>mem.LineShift)&c.setMask]
}

// Lookup returns the line holding addr, bumping its LRU age, or nil on a
// miss. addr need not be line-aligned.
func (c *Cache) Lookup(addr mem.Addr) *Line {
	la := mem.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == la {
			c.tick++
			set[i].lru = c.tick
			c.hits++
			return &set[i]
		}
	}
	c.misses++
	return nil
}

// Peek returns the line holding addr without affecting LRU or counters,
// or nil if absent.
func (c *Cache) Peek(addr mem.Addr) *Line {
	la := mem.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == la {
			return &set[i]
		}
	}
	return nil
}

// Insert places a line with the given contents into the cache and
// returns a pointer to it. If a victim had to be evicted, its copy is
// returned with evicted=true. The caller (the machine layer) is
// responsible for propagating the victim down the hierarchy. Inserting a
// line that is already present overwrites its metadata.
func (c *Cache) Insert(l Line) (inserted *Line, victim Line, evicted bool) {
	la := mem.LineAddr(l.Addr)
	l.Addr = la
	set := c.set(la)
	c.tick++
	l.lru = c.tick

	// Already present? Overwrite in place.
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == la {
			set[i] = l
			return &set[i], Line{}, false
		}
	}
	// Free way?
	for i := range set {
		if set[i].State == Invalid {
			set[i] = l
			return &set[i], Line{}, false
		}
	}
	// Evict LRU.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim = set[vi]
	set[vi] = l
	c.evicts++
	return &set[vi], victim, true
}

// Remove deletes the line holding addr, returning its copy and true if
// it was present.
func (c *Cache) Remove(addr mem.Addr) (Line, bool) {
	la := mem.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == la {
			l := set[i]
			set[i] = Line{}
			return l, true
		}
	}
	return Line{}, false
}

// ForEach invokes fn on every valid line. fn may mutate the line but
// must not insert or remove lines.
func (c *Cache) ForEach(fn func(*Line)) {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].State != Invalid {
				fn(&c.sets[s][i])
			}
		}
	}
}

// Flush invalidates every line. Victims are discarded; callers needing
// writebacks must ForEach first.
func (c *Cache) Flush() {
	for s := range c.sets {
		for i := range c.sets[s] {
			//slpmt:obsonly-ok: false edge from the stream writer's flusher interface — Cache satisfies it structurally but is never registered as a stream consumer (cache and trace/stream share no conversion site)
			c.sets[s][i] = Line{}
		}
	}
}

// Count returns the number of valid lines.
func (c *Cache) Count() int {
	n := 0
	c.ForEach(func(*Line) { n++ })
	return n
}

// Stats returns (hits, misses, evictions) since creation.
func (c *Cache) Stats() (hits, misses, evicts uint64) {
	return c.hits, c.misses, c.evicts
}
