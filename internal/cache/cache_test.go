package cache

import (
	"testing"
	"testing/quick"

	"github.com/persistmem/slpmt/internal/mem"
)

func newL1() *Cache {
	return New(Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 4})
}

func TestLookupMissThenInsert(t *testing.T) {
	c := newL1()
	if c.Lookup(0x1000) != nil {
		t.Fatal("hit on empty cache")
	}
	c.Insert(Line{Addr: 0x1000, State: Exclusive})
	l := c.Lookup(0x1000 + 63) // any byte of the line
	if l == nil || l.Addr != 0x1000 {
		t.Fatal("line not found after insert")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets: lines 0, 128 map to set 0; 64, 192 to set 1.
	c := New(Config{Name: "t", SizeBytes: 4 * mem.LineSize, Ways: 2, LatencyCycles: 1})
	c.Insert(Line{Addr: 0, State: Exclusive})
	c.Insert(Line{Addr: 128, State: Exclusive})
	c.Lookup(0) // make 0 most recent
	_, victim, evicted := c.Insert(Line{Addr: 256, State: Exclusive})
	if !evicted || victim.Addr != 128 {
		t.Errorf("expected LRU victim 128, got %v evicted=%v", victim.Addr, evicted)
	}
	if c.Peek(0) == nil || c.Peek(256) == nil {
		t.Error("resident lines wrong after eviction")
	}
}

func TestInsertOverwritesInPlace(t *testing.T) {
	c := newL1()
	c.Insert(Line{Addr: 0x40, State: Modified, LogBits: 0x0F})
	_, _, evicted := c.Insert(Line{Addr: 0x40, State: Exclusive, LogBits: 0xF0})
	if evicted {
		t.Error("overwrite should not evict")
	}
	l := c.Peek(0x40)
	if l.LogBits != 0xF0 || l.State != Exclusive {
		t.Errorf("overwrite did not take: %+v", l)
	}
	if c.Count() != 1 {
		t.Errorf("count = %d, want 1", c.Count())
	}
}

func TestRemove(t *testing.T) {
	c := newL1()
	c.Insert(Line{Addr: 0x80, State: Modified, TxID: 3})
	l, ok := c.Remove(0x80)
	if !ok || l.TxID != 3 {
		t.Fatal("remove lost line state")
	}
	if _, ok := c.Remove(0x80); ok {
		t.Error("double remove succeeded")
	}
}

func TestFoldReplicateLogBits(t *testing.T) {
	cases := []struct{ l1, l2 uint8 }{
		{0xFF, 0x03},
		{0x0F, 0x01},
		{0xF0, 0x02},
		{0x0E, 0x00}, // partial low group folds away
		{0x7F, 0x01},
		{0x00, 0x00},
	}
	for _, c := range cases {
		if got := FoldLogBits(c.l1); got != c.l2 {
			t.Errorf("Fold(%#x) = %#x, want %#x", c.l1, got, c.l2)
		}
	}
	// Replication is exact for folded values.
	if ReplicateLogBits(0x03) != 0xFF || ReplicateLogBits(0x01) != 0x0F || ReplicateLogBits(0x02) != 0xF0 {
		t.Error("replicate broken")
	}
}

// TestFoldConservative: folding then replicating never invents log bits
// (false positives would lose undo records); it may only drop them.
func TestFoldConservative(t *testing.T) {
	f := func(bits uint8) bool {
		round := ReplicateLogBits(FoldLogBits(bits))
		return round&^bits == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForEachAndFlush(t *testing.T) {
	c := newL1()
	for i := 0; i < 10; i++ {
		c.Insert(Line{Addr: mem.Addr(i * 64), State: Modified})
	}
	n := 0
	c.ForEach(func(l *Line) { n++ })
	if n != 10 {
		t.Errorf("ForEach visited %d, want 10", n)
	}
	c.Flush()
	if c.Count() != 0 {
		t.Error("flush left lines")
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "bad", SizeBytes: 0, Ways: 4},
		{Name: "bad", SizeBytes: 192, Ways: 4},        // not divisible
		{Name: "bad", SizeBytes: 3 * 64 * 4, Ways: 4}, // sets not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("state strings broken")
	}
}
