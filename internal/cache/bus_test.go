package cache

import (
	"math/rand"
	"testing"

	"github.com/persistmem/slpmt/internal/mem"
)

func newBus(n int) *Bus {
	caches := make([]*Cache, n)
	for i := range caches {
		caches[i] = New(Config{Name: "P", SizeBytes: 8 << 10, Ways: 4, LatencyCycles: 1})
	}
	return NewBus(caches)
}

func TestBusReadSharing(t *testing.T) {
	b := newBus(2)
	l0, _, _ := b.Read(0, 0x100)
	if l0.State != Exclusive {
		t.Errorf("sole reader state = %v, want E", l0.State)
	}
	l1, _, _ := b.Read(1, 0x100)
	if l1.State != Shared {
		t.Errorf("second reader state = %v, want S", l1.State)
	}
	if b.Cache(0).Peek(0x100).State != Shared {
		t.Error("first copy not downgraded to S")
	}
}

func TestBusWriteInvalidates(t *testing.T) {
	b := newBus(3)
	b.Read(0, 0x200)
	b.Read(1, 0x200)
	invalidated := 0
	b.OnInvalidate = func(core int, l *Line) { invalidated++ }
	remote := false
	b.OnRemoteStore = func(src int, addr mem.Addr) { remote = addr == 0x200 && src == 2 }
	l, _, _ := b.Write(2, 0x200)
	if l.State != Modified {
		t.Errorf("writer state = %v, want M", l.State)
	}
	if invalidated != 2 || !remote {
		t.Errorf("invalidations=%d remote=%v", invalidated, remote)
	}
	if b.Cache(0).Peek(0x200) != nil || b.Cache(1).Peek(0x200) != nil {
		t.Error("remote copies survived a write")
	}
}

func TestBusDowngradeOnRemoteRead(t *testing.T) {
	b := newBus(2)
	b.Write(0, 0x300)
	downgraded := false
	b.OnDowngrade = func(core int, l *Line) { downgraded = core == 0 }
	l, _, _ := b.Read(1, 0x300)
	if !downgraded {
		t.Error("owner not asked to supply data")
	}
	if l.State != Shared || b.Cache(0).Peek(0x300).State != Shared {
		t.Error("states after remote read not S/S")
	}
}

// TestBusSWMRRandom: the single-writer/multiple-reader invariant holds
// under a random access workload across four cores.
func TestBusSWMRRandom(t *testing.T) {
	b := newBus(4)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		core := rng.Intn(4)
		addr := mem.Addr(rng.Intn(256)) * mem.LineSize
		if rng.Intn(2) == 0 {
			b.Read(core, addr)
		} else {
			b.Write(core, addr)
		}
		if i%1000 == 0 {
			if a, ok := b.CheckSWMR(); !ok {
				t.Fatalf("SWMR violated at line %#x after %d ops", a, i)
			}
		}
	}
	if a, ok := b.CheckSWMR(); !ok {
		t.Fatalf("SWMR violated at line %#x", a)
	}
}

func TestInvalidateLocal(t *testing.T) {
	b := newBus(1)
	b.Write(0, 0x100)
	b.Write(0, 0x140)
	l, _, _ := b.Write(0, 0x180)
	l.TxID = 2
	dropped := 0
	b.InvalidateLocal(0, func(l *Line) bool { return l.TxID != 2 }, func(l *Line) { dropped++ })
	if dropped != 1 {
		t.Errorf("dropped %d lines, want 1", dropped)
	}
	if b.Cache(0).Peek(0x180) != nil {
		t.Error("targeted line survived invalidation")
	}
	if b.Cache(0).Peek(0x100) == nil || b.Cache(0).Peek(0x140) == nil {
		t.Error("unrelated lines were invalidated")
	}
}
