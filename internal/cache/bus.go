package cache

import "github.com/persistmem/slpmt/internal/mem"

// Bus is a snooping MESI coherence bus connecting the private caches of
// several cores. The single-core timing evaluation does not exercise it,
// but SLPMT's lazy persistency and abort paths are specified in terms of
// coherence requests (§III-C, §V-B), so the protocol is implemented and
// tested functionally.
//
// The bus model is atomic: each request completes before the next one is
// issued. Each core's private cache is represented by one Cache (the
// protocol is agnostic to whether that models an L1 or an L1+L2 pair).
type Bus struct {
	caches []*Cache

	// OnRemoteStore is invoked when core src gains write ownership of a
	// line that another cache held — the coherence event on which SLPMT
	// checks the lazy-persistency signatures of remote cores (§III-C3).
	OnRemoteStore func(src int, addr mem.Addr)
	// OnInvalidate is invoked when a cache must drop a line due to a
	// remote write. SLPMT uses this to detect loss of lazily persistent
	// data that must first be persisted.
	OnInvalidate func(core int, line *Line)
	// OnDowngrade is invoked when a Modified line is downgraded to
	// Shared by a remote read; the owner must supply (write back) data.
	OnDowngrade func(core int, line *Line)
}

// NewBus creates a bus over the given private caches; the slice index is
// the core ID.
func NewBus(caches []*Cache) *Bus {
	return &Bus{caches: caches}
}

// Cache returns core's private cache.
func (b *Bus) Cache(core int) *Cache { return b.caches[core] }

// Read performs a coherent read by core on addr's line, returning the
// core-local line. Remote Modified copies are downgraded to Shared;
// remote Exclusive copies become Shared. The returned line is Shared if
// any other cache holds the line, Exclusive otherwise.
func (b *Bus) Read(core int, addr mem.Addr) (*Line, Line, bool) {
	la := mem.LineAddr(addr)
	if l := b.caches[core].Lookup(la); l != nil {
		return l, Line{}, false
	}
	shared := false
	for i, c := range b.caches {
		if i == core {
			continue
		}
		if rl := c.Peek(la); rl != nil {
			if rl.State == Modified {
				if b.OnDowngrade != nil {
					b.OnDowngrade(i, rl)
				}
			}
			rl.State = Shared
			shared = true
		}
	}
	st := Exclusive
	if shared {
		st = Shared
	}
	return b.caches[core].Insert(Line{Addr: la, State: st})
}

// Write performs a coherent write (read-for-ownership) by core on addr's
// line: all remote copies are invalidated and the local line becomes
// Modified.
func (b *Bus) Write(core int, addr mem.Addr) (*Line, Line, bool) {
	la := mem.LineAddr(addr)
	hadRemote := false
	for i, c := range b.caches {
		if i == core {
			continue
		}
		if rl := c.Peek(la); rl != nil {
			if b.OnInvalidate != nil {
				b.OnInvalidate(i, rl)
			}
			c.Remove(la)
			hadRemote = true
		}
	}
	if hadRemote && b.OnRemoteStore != nil {
		b.OnRemoteStore(core, la)
	}
	if l := b.caches[core].Lookup(la); l != nil {
		l.State = Modified
		return l, Line{}, false
	}
	ins, victim, evicted := b.caches[core].Insert(Line{Addr: la, State: Modified})
	return ins, victim, evicted
}

// InvalidateLocal drops every line of core's cache for which keep
// returns false, invoking fn on each dropped line. It models the
// abort-time coherence request that invalidates the cache lines a
// transaction updated (§V-B).
func (b *Bus) InvalidateLocal(core int, keep func(*Line) bool, fn func(*Line)) {
	c := b.caches[core]
	var drop []mem.Addr
	c.ForEach(func(l *Line) {
		if !keep(l) {
			if fn != nil {
				fn(l)
			}
			drop = append(drop, l.Addr)
		}
	})
	for _, a := range drop {
		c.Remove(a)
	}
}

// CheckSWMR verifies the single-writer/multiple-reader invariant across
// all caches for every resident line, returning the first violating
// address or (0, true) if the invariant holds.
func (b *Bus) CheckSWMR() (mem.Addr, bool) {
	type occ struct{ m, any int }
	seen := map[mem.Addr]*occ{}
	for _, c := range b.caches {
		c.ForEach(func(l *Line) {
			o := seen[l.Addr]
			if o == nil {
				o = &occ{}
				seen[l.Addr] = o
			}
			o.any++
			if l.State == Modified || l.State == Exclusive {
				o.m++
			}
		})
	}
	//slpmt:determinism-ok: pass/fail is order-independent; order only picks which violating address is reported
	for a, o := range seen {
		if o.m > 1 || (o.m == 1 && o.any > 1) {
			return a, false
		}
	}
	return 0, true
}
