package engine

import (
	"encoding/binary"
	"fmt"
	"slices"

	"github.com/persistmem/slpmt/internal/cache"
	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/logbuf"
	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/signature"
	"github.com/persistmem/slpmt/internal/trace"
)

// Write-set line classes (per-line, a line with any logged word is a
// logged line; Figure 4 orders persists by these classes).
const (
	wsLogged  uint8 = 1 << 0
	wsLogFree uint8 = 1 << 1
)

// retainedTx is a committed transaction whose lazily persistent data is
// still volatile: its working-set signature stays live until every lazy
// line has reached PM (§III-C).
type retainedTx struct {
	id   uint8 // transaction ID (0..NumTxIDs-1)
	seq  uint64
	sig  *signature.Signature
	lazy map[mem.Addr]struct{} // line addresses still to persist
}

// txState is the engine's view of the currently executing transaction.
type txState struct {
	active      bool
	id          uint8
	seq         uint64
	sig         *signature.Signature
	lazyLines   map[mem.Addr]struct{} // lines with persist bit clear
	writeLines  map[mem.Addr]uint8    // line -> ws class bits
	loggedWords map[mem.Addr]struct{} // words logged this transaction
}

// lineID encodes a transaction ID into the cache-line TxID field;
// 0 means "no owner" (freshly fetched lines), so IDs are stored +1.
func lineID(id uint8) uint8 { return id + 1 }

// Engine models the SLPMT hardware of one core (or, under other
// Configs, the FG/ATOM/EDE designs of §VI-C). Not safe for concurrent
// use.
type Engine struct {
	cfg  Config
	m    *machine.Core
	w    *logWriter
	sink logSink

	sigs     [NumSignatures]signature.Signature
	cur      txState
	retained []retainedTx // FIFO, oldest first
	nextID   uint8
	seq      uint64

	// suppressed records lines whose L3 writeback was blocked by the
	// redo-mode filter; they must be force-persisted at commit.
	suppressed map[mem.Addr]struct{}

	// Group-commit state (CommitWindow > 1). An epoch spans up to
	// CommitWindow committed transactions in one contiguous slice of
	// the log stream; their ordering persists (watermark sync,
	// durability barrier, data flush, commit marker) are issued once at
	// the epoch close. The maps are nil below W=2, so every lookup on
	// the per-transaction paths stays a nil-map probe.
	epoch        uint64 // current epoch counter (header stamp)
	epochOpen    bool   // an epoch is accepting commits
	epochTxns    int    // transactions committed into the open epoch
	epochClk     uint64 // core clock at epoch open (cycle-budget flush)
	epochLastSeq uint64 // seq of the youngest committed transaction
	txnStartOff  uint64 // running transaction's first record offset
	closedSeq    uint64 // highest seq covered by a durable epoch close
	// epochPending accumulates the committed transactions' eager
	// write-set lines (class bits ORed) until the close's data flush;
	// epochLogged their non-lazy logged lines, which gate evictions
	// (undo: unsynced records; redo: writeback suppression).
	epochPending map[mem.Addr]uint8
	epochLogged  map[mem.Addr]struct{}
	epochKeyBuf  []mem.Addr
	// group coordinates multi-core closes: non-nil only on clustered
	// engines with CommitWindow > 1, where per-core epochs must commit
	// atomically as a group (see EpochGroup).
	group *EpochGroup
	// onEpochClose fires after an epoch's commit point is durable —
	// the facade hooks the heap's epoch-quarantined frees here.
	onEpochClose func()
	// gseqBuf is the boundary record's payload scratch (the writer
	// copies it out immediately; a field keeps Begin allocation-free).
	gseqBuf [8]byte

	// lazyPool recycles the per-transaction lazy-line sets that Commit
	// hands off to retainedTx entries, so a steady stream of lazy
	// transactions allocates no new maps.
	lazyPool []map[mem.Addr]struct{}

	// scratch is the per-transaction arena for log-record payloads.
	// Records never outlive their transaction (the sink drains at commit
	// and clears at abort; the log writer copies payloads out), so the
	// arena resets at Begin instead of allocating per word.
	scratch    []byte
	scratchOff int

	// lazyKeyBuf and wsKeyBuf are reusable scratch slices for iterating
	// the per-transaction line maps in address order: map iteration
	// order is randomized, and the persist sequence it would produce
	// leaks into the event trace (WPQ enqueue addresses), breaking
	// replay determinism. Two buffers because a commit walks the lazy
	// set and the write set in overlapping scopes.
	lazyKeyBuf []mem.Addr
	wsKeyBuf   []mem.Addr
}

// sortedKeys collects m's line addresses into buf (reused across calls)
// and returns them sorted, so map-backed persist loops run in a
// deterministic address order.
func sortedKeys[V any](buf []mem.Addr, m map[mem.Addr]V) []mem.Addr {
	buf = buf[:0]
	for la := range m { //slpmt:determinism-ok: collected keys are sorted below
		buf = append(buf, la)
	}
	slices.Sort(buf)
	return buf
}

// New wires an engine to a machine. The machine's eviction hooks are
// claimed by the engine.
func New(m *machine.Core, cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg:        cfg,
		m:          m,
		suppressed: make(map[mem.Addr]struct{}),
	}
	if cfg.CommitWindow > 1 {
		e.epochPending = make(map[mem.Addr]uint8)
		e.epochLogged = make(map[mem.Addr]struct{})
	}
	e.w = newLogWriter(m)
	refresh := e.refreshRecord
	if cfg.Buffer == BufferTiered {
		e.sink = newTieredSink(e.w, refresh)
	} else {
		e.sink = newDirectSink(e.w, refresh)
	}
	m.OnL2Evict = e.onL2Evict
	m.OnL1Demote = e.onL1Demote
	m.OnL3Writeback = e.onL3Writeback
	if cfg.Mode == Redo {
		m.WritebackFilter = e.writebackFilter
	}
	if cfg.CommitWindow > 1 {
		m.OnCoherenceTake = e.onCoherenceTake
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Core returns the underlying core.
func (e *Engine) Core() *machine.Core { return e.m }

// InTx reports whether a transaction is active.
func (e *Engine) InTx() bool { return e.cur.active }

// Seq returns the current transaction sequence number.
func (e *Engine) Seq() uint64 { return e.seq }

// grouped reports whether group commit (epoch batching) is active.
func (e *Engine) grouped() bool { return e.cfg.CommitWindow > 1 }

// Epoch returns the current epoch counter (introspection for tests).
func (e *Engine) Epoch() uint64 { return e.epoch }

// EpochOpen reports whether an epoch is still accepting commits, i.e.
// some committed transactions are not yet durable (tests, harnesses).
func (e *Engine) EpochOpen() bool { return e.epochOpen && e.epochTxns > 0 }

// ClosedSeq returns the highest transaction sequence number covered by
// a durable epoch close — the crash campaign's durability frontier.
// Below W=2 every commit is its own durability point, so it equals
// Seq().
func (e *Engine) ClosedSeq() uint64 {
	if !e.grouped() {
		return e.seq
	}
	return e.closedSeq
}

// refreshRecord gives a record its final payload at spill time: undo
// records keep the old value captured at store time; redo records are
// refreshed to the latest volatile value so replay installs the newest
// data.
func (e *Engine) refreshRecord(r logbuf.Record) logbuf.Record {
	if e.cfg.Mode == Undo {
		return r
	}
	data := e.scratchBytes(len(r.Data))
	e.m.ReadMem(r.Addr, data)
	return logbuf.Record{Addr: r.Addr, Data: data, Speculative: r.Speculative}
}

// scratchBlock sizes the arena growth step; large enough that even a
// line-granularity transaction rarely grows twice.
const scratchBlock = 1 << 16

// scratchBytes returns n bytes of transaction-lifetime scratch from the
// arena. Earlier blocks stay alive through the records referencing
// them; the arena as a whole is recycled at Begin.
func (e *Engine) scratchBytes(n int) []byte {
	if e.scratchOff+n > len(e.scratch) {
		size := scratchBlock
		if n > size {
			size = n
		}
		e.scratch = make([]byte, size)
		e.scratchOff = 0
	}
	p := e.scratch[e.scratchOff : e.scratchOff+n : e.scratchOff+n]
	e.scratchOff += n
	return p
}

// Begin starts a durable transaction: allocates a transaction ID (forcing
// lazy persists of a recycled ID's owner, §III-C2) and initializes the
// durable log header so recovery can identify an in-flight transaction.
func (e *Engine) Begin() {
	if e.cur.active {
		panic("engine: nested transactions are not supported")
	}
	if e.group != nil {
		// Clustered group commit numbers transactions from the shared
		// sequence: boundary records carry these values, and recovery
		// relies on them to order interleaved cross-core records.
		e.seq = e.group.nextSeq()
	} else {
		e.seq++
	}
	e.m.Trace(trace.KTxBegin, 0, e.seq)
	id := e.nextID
	e.nextID = (e.nextID + 1) % NumTxIDs
	// Circular ID reuse: if a retained transaction still owns this ID,
	// persist its lazy data (and that of every earlier transaction).
	for i := range e.retained {
		if e.retained[i].id == id {
			e.m.Stats.TxIDRecycles++
			e.persistRetainedThrough(i)
			break
		}
	}
	// Reuse the per-transaction tracking maps and the record-payload
	// arena: Commit hands lazyLines off to a retainedTx (replaced from
	// the recycle pool here), while writeLines/loggedWords never escape
	// the transaction and are merely cleared.
	e.cur.active = true
	e.cur.id = id
	e.cur.seq = e.seq
	e.cur.sig = &e.sigs[id]
	if e.cur.lazyLines == nil {
		e.cur.lazyLines = e.takeLazySet()
	} else {
		clear(e.cur.lazyLines)
	}
	if e.cur.writeLines == nil {
		e.cur.writeLines = make(map[mem.Addr]uint8)
	} else {
		clear(e.cur.writeLines)
	}
	if e.cur.loggedWords == nil {
		e.cur.loggedWords = make(map[mem.Addr]struct{})
	} else {
		clear(e.cur.loggedWords)
	}
	e.scratchOff = 0
	e.cur.sig.Clear()
	mode := uint64(logfmt.ModeUndo)
	if e.cfg.Mode == Redo {
		mode = logfmt.ModeRedo
	}
	if e.grouped() {
		e.beginEpochTxn(mode)
		e.m.Stats.TxBegins++
		return
	}
	// The fresh header resets the watermark to the empty stream, so
	// recovery can never attribute a previous transaction's records to
	// this one. Posted: durable at enqueue under ADR.
	e.m.PushAsync()
	e.w.reset(e.seq)
	e.w.writeHeader(logfmt.Header{
		Magic:     logfmt.Magic,
		Seq:       e.seq,
		State:     logfmt.StateActive,
		Mode:      mode,
		Watermark: logfmt.RecordsStart,
	})
	e.m.PopAsync()
	e.m.Stats.TxBegins++
}

// beginEpochTxn threads a new transaction into the core's epoch
// stream. The first transaction of an epoch opens it with one posted
// header write (the only per-epoch header persist until the close);
// later transactions pay no header write at all — they spill the
// previous transaction's buffered records and remember where their own
// records start. The spill keeps the stream partitioned by
// transaction, which the forced-close split and the abort path rely
// on: every record below txnStartOff belongs to an earlier transaction
// of the window.
func (e *Engine) beginEpochTxn(mode uint64) {
	e.m.PushAsync()
	if e.epochOpen {
		e.sink.spill()
	} else {
		e.epoch++
		e.epochOpen = true
		e.epochTxns = 0
		e.epochClk = e.m.Clk
		e.w.reset(e.seq)
		e.w.writeHeader(logfmt.Header{
			Magic:       logfmt.Magic,
			Seq:         e.seq,
			State:       logfmt.StateActive,
			Mode:        mode,
			Watermark:   logfmt.RecordsStart,
			Epoch:       e.epoch,
			CommittedTo: logfmt.RecordsStart,
		})
	}
	e.w.seq = e.seq
	e.txnStartOff = e.w.nextOff
	// Every grouped transaction opens with a boundary record: an
	// 8-byte payload carrying its sequence number at the sentinel
	// address. The stream stays partitioned by transaction even after
	// the log bits blur across the window, and recovery can order the
	// units of different cores exactly (the group numbers transactions
	// globally). txnStartOff points AT the boundary, so the forced-
	// close split and the abort suffix both carry their sentinel.
	binary.LittleEndian.PutUint64(e.gseqBuf[:], e.seq)
	e.w.append(logbuf.Record{Addr: logfmt.BoundaryAddr, Data: e.gseqBuf[:]})
	e.m.PopAsync()
}

// onCoherenceTake runs before a remote core's bus request takes a
// dirty line out of this core's private caches, where the owner's
// coherence writeback would persist the data. Under group commit the
// line may carry values committed into the still-open epoch whose log
// records are not yet covered by the durable watermark (records spill
// only at the next Begin), so the data persist would break the
// epoch-granular log-before-data invariant; the records are made
// durable first — posted writes, since enqueue order is the ADR
// durability order. Redo mode goes further: logged epoch data must not
// reach PM before the epoch's commit point at all, so the take is
// vetoed and the line joins the suppressed set that the close
// force-persists. Installed only above W=1; at W=1 commit cleans every
// logged line before another core can take it.
func (e *Engine) onCoherenceTake(addr mem.Addr) bool {
	_, epochLine := e.epochLogged[addr]
	if epochLine || e.sink.hasLine(addr) {
		e.m.PushAsync()
		e.sink.flushLine(addr)
		e.m.PopAsync()
	}
	if e.cfg.Mode == Redo {
		if e.cur.active {
			if cls, ok := e.cur.writeLines[addr]; ok && cls&wsLogged != 0 {
				e.suppressed[addr] = struct{}{}
				return false
			}
		}
		if epochLine {
			e.suppressed[addr] = struct{}{}
			return false
		}
	}
	return true
}

// Load performs a transactional (or, outside a transaction, plain) read
// of len(p) bytes at addr.
func (e *Engine) Load(addr mem.Addr, p []byte) {
	e.m.Stats.Loads++
	e.m.Tick(e.cfg.ComputeCyclesPerOp)
	mem.LineRange(addr, len(p), func(line mem.Addr, off, n int) {
		l := e.m.AccessLine(line, false)
		e.checkLineOwner(l)
		if e.cur.active {
			e.cur.sig.Add(line)
		}
	})
	e.m.ReadMem(addr, p)
}

// LoadU64 reads one little-endian word.
func (e *Engine) LoadU64(addr mem.Addr) uint64 {
	var b [8]byte
	e.Load(addr, b[:])
	v := uint64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Store performs a store or storeT of p at addr within the current
// transaction (Table I semantics, subject to the scheme's capabilities).
// Outside a transaction the data is written volatile without logging.
func (e *Engine) Store(addr mem.Addr, p []byte, kind isa.Kind, attr isa.Attr) {
	if kind == isa.StoreT {
		e.m.Stats.StoreTs++
	} else {
		e.m.Stats.Stores++
	}
	e.m.Tick(e.cfg.ComputeCyclesPerOp)
	if kind == isa.StoreT {
		e.m.Trace(trace.KStoreT, addr, uint64(len(p)))
	} else {
		e.m.Trace(trace.KStore, addr, uint64(len(p)))
	}
	bits := e.cfg.Caps.ResolveFor(kind, attr)
	off := 0
	mem.LineRange(addr, len(p), func(line mem.Addr, lineOff, n int) {
		a := line + mem.Addr(lineOff)
		e.storeOne(a, p[off:off+n], bits)
		off += n
	})
}

// StoreU64 writes one little-endian word.
func (e *Engine) StoreU64(addr mem.Addr, v uint64, kind isa.Kind, attr isa.Attr) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
	e.Store(addr, b[:], kind, attr)
}

// storeOne handles the part of a store that lies within one cache line.
//
//slpmt:noalloc
func (e *Engine) storeOne(a mem.Addr, data []byte, bits isa.Bits) {
	line := mem.LineAddr(a)
	// Lazy-persistency conflict detection: before updating data in a
	// retained transaction's working set, its lazy lines must persist
	// (§III-C3).
	e.checkStoreConflict(line)

	l := e.m.AccessLine(a, true)
	e.checkLineOwner(l)

	if !e.cur.active {
		// Non-transactional store: volatile write only (the line will
		// reach PM by natural writeback or an explicit persist).
		e.m.WriteMem(a, data)
		return
	}

	if bits.Log {
		prev := e.m.SetCause(profile.CauseLogAppend)
		if e.cfg.Buffer == BufferTiered {
			// The log buffer decouples logging from execution: spills
			// are posted by the buffer engine (§III-B2).
			e.m.PushAsync()
			e.logStore(l, a, len(data))
			e.m.PopAsync()
		} else {
			// No buffer (EDE): log writes leave through the core's
			// store path and feel queue backpressure in program order.
			e.m.PushStream()
			e.logStore(l, a, len(data))
			e.m.PopStream()
		}
		e.m.SetCause(prev)
	}
	if bits.Persist {
		l.Persist = true
		delete(e.cur.lazyLines, line)
	} else if !l.Persist {
		// storeT with lazy set and no earlier eager store to this line:
		// the line is lazily persistent (§III-C1; a later store or
		// eager storeT cancels this, handled above).
		e.cur.lazyLines[line] = struct{}{}
	}
	l.TxID = lineID(e.cur.id)
	e.cur.sig.Add(line)
	cls := wsLogFree
	if bits.Log {
		cls = wsLogged
	}
	e.cur.writeLines[line] |= cls
	e.m.WriteMem(a, data)
}

// logStore creates the undo/redo records a store requires: the unlogged
// words it touches (word granularity) or the whole line (line
// granularity). Old values are captured before the store's data is
// written.
//
//slpmt:noalloc
func (e *Engine) logStore(l *cache.Line, a mem.Addr, size int) {
	line := mem.LineAddr(a)
	var mask uint8
	if e.cfg.Granularity == Line {
		mask = cache.L1LogMaskFull
	} else {
		mask = mem.WordMask(a, size)
	}
	missing := mask &^ l.LogBits
	if missing == 0 {
		return
	}
	if e.cfg.Granularity == Line {
		data := e.scratchBytes(mem.LineSize) //slpmt:noalloc-escape-ok: arena growth is amortized; steady state reuses the block
		e.m.ReadMem(line, data)
		e.sink.add(logbuf.Record{Addr: line, Data: data})
		e.m.Trace(trace.KLogAppend, line, mem.LineSize)
		e.m.Stats.LogRecordsCreated++
		if _, dup := e.cur.loggedWords[line]; dup {
			e.m.Stats.LogDuplicates++
		}
		e.cur.loggedWords[line] = struct{}{}
	} else {
		for w := 0; w < mem.WordsPerLine; w++ {
			if missing&(1<<uint(w)) == 0 {
				continue
			}
			wa := line + mem.Addr(w*mem.WordSize)
			data := e.scratchBytes(mem.WordSize) //slpmt:noalloc-escape-ok: arena growth is amortized; steady state reuses the block
			e.m.ReadMem(wa, data)
			e.sink.add(logbuf.Record{Addr: wa, Data: data})
			e.m.Trace(trace.KLogAppend, wa, mem.WordSize)
			e.m.Stats.LogRecordsCreated++
			if _, dup := e.cur.loggedWords[wa]; dup {
				e.m.Stats.LogDuplicates++
			}
			e.cur.loggedWords[wa] = struct{}{}
		}
	}
	l.LogBits |= mask
}

// checkLineOwner implements the per-access transaction-ID check
// (§III-C3): touching a cache line owned by an earlier transaction that
// still has volatile lazy data forces that data (and all older lazy
// data) to persist.
func (e *Engine) checkLineOwner(l *cache.Line) {
	if l.TxID == 0 {
		return
	}
	if e.cur.active && l.TxID == lineID(e.cur.id) {
		return
	}
	owner := l.TxID - 1
	for i := range e.retained {
		if e.retained[i].id == owner {
			e.m.Stats.TxIDCrossAccess++
			e.persistRetainedThrough(i)
			return
		}
	}
}

// checkStoreConflict implements the signature check (§III-C3): a store
// whose address matches a retained transaction's working set forces that
// transaction's lazy data to persist first.
func (e *Engine) checkStoreConflict(line mem.Addr) {
	last := -1
	for i := range e.retained {
		if e.retained[i].sig.MayContain(line) {
			e.m.Stats.SignatureHits++
			// One event per hit keeps the streamed per-interval count
			// equal to the Stats.SignatureHits delta; arg carries the
			// matched transaction's drain depth (oldest-first index + 1).
			e.m.Trace(trace.KSigHit, line, uint64(i+1))
			last = i
		}
	}
	if last >= 0 {
		e.persistRetainedThrough(last)
	}
}

// CoherenceStore runs the signature check for a store issued by a
// remote core (§III-C3 across cores): the coherence write request is
// visible to every core's SLPMT unit, and a hit against one of this
// engine's retained transactions forces its lazy data to persist before
// the remote store proceeds. The drain is posted on this engine's
// core timeline, like any lazy drain.
func (e *Engine) CoherenceStore(line mem.Addr) {
	e.checkStoreConflict(line)
}

// persistRetainedThrough persists the lazy data of retained transactions
// 0..idx (oldest first, as §III-C2 requires) and releases their IDs and
// signatures.
func (e *Engine) persistRetainedThrough(idx int) {
	// Under group commit a forced drain persists lazy lines whose log
	// records were discarded at commit; those commits must first stop
	// being rollback-able, so the open epoch force-closes before any
	// lazy data lands (the §III-C drains are the "forced drain from a
	// remote conflict" interaction).
	e.forceCloseEpoch()
	// Lazy drains are posted persists off the critical path (§III-C3).
	e.m.Trace(trace.KLazyDrainStart, 0, uint64(idx+1))
	defer e.m.Trace(trace.KLazyDrainEnd, 0, uint64(idx+1))
	prev := e.m.SetCause(profile.CauseLazyDrain)
	defer e.m.SetCause(prev)
	e.m.PushAsync()
	defer e.m.PopAsync()
	for i := 0; i <= idx; i++ {
		r := &e.retained[i]
		e.lazyKeyBuf = sortedKeys(e.lazyKeyBuf, r.lazy)
		for _, la := range e.lazyKeyBuf {
			if e.m.PersistLine(la) {
				e.m.Stats.LazyLinePersists++
			} else {
				e.m.Stats.LazyLinesElided++
			}
		}
		r.sig.Clear()
		clear(r.lazy)
		e.lazyPool = append(e.lazyPool, r.lazy)
		r.lazy = nil
	}
	e.retained = append(e.retained[:0], e.retained[idx+1:]...)
}

// takeLazySet returns an empty lazy-line set, recycled from released
// retained transactions when possible.
func (e *Engine) takeLazySet() map[mem.Addr]struct{} {
	if n := len(e.lazyPool); n > 0 {
		m := e.lazyPool[n-1]
		e.lazyPool = e.lazyPool[:n-1]
		return m
	}
	return make(map[mem.Addr]struct{})
}

// DrainLazy persists every retained transaction's lazy data — the effect
// the paper obtains by running NumTxIDs empty transactions. Harnesses
// call it at the end of the measured region so deferred traffic is
// accounted.
func (e *Engine) DrainLazy() {
	e.forceCloseEpoch()
	if len(e.retained) > 0 {
		e.persistRetainedThrough(len(e.retained) - 1)
	}
}

// RetainedLazyLines returns the number of lazy lines still volatile
// (introspection for tests).
func (e *Engine) RetainedLazyLines() int {
	n := 0
	for i := range e.retained {
		n += len(e.retained[i].lazy)
	}
	return n
}

// onL1Demote implements the speculative-logging optimization (§III-B1):
// before an L1 line's log bits fold to L2 granularity, partially logged
// 32-byte groups are rounded up by logging their remaining words, so the
// folded bit is preserved and re-fetch does not re-log.
func (e *Engine) onL1Demote(l *cache.Line) {
	if !e.cfg.Speculative || !e.cur.active || l.LogBits == 0 {
		return
	}
	prev := e.m.SetCause(profile.CauseLogAppend)
	defer e.m.SetCause(prev)
	e.m.PushAsync()
	defer e.m.PopAsync()
	if l.TxID != lineID(e.cur.id) {
		return
	}
	for g := 0; g < 2; g++ {
		group := uint8(0x0F << uint(4*g))
		got := l.LogBits & group
		if got == 0 || got == group {
			continue
		}
		for w := 4 * g; w < 4*(g+1); w++ {
			bit := uint8(1) << uint(w)
			if l.LogBits&bit != 0 {
				continue
			}
			wa := l.Addr + mem.Addr(w*mem.WordSize)
			data := e.scratchBytes(mem.WordSize)
			e.m.ReadMem(wa, data)
			e.sink.add(logbuf.Record{Addr: wa, Data: data, Speculative: true})
			e.m.Stats.SpeculativeRecords++
			l.LogBits |= bit
		}
	}
}

// onL2Evict is the hardware action when a line leaves the private
// caches: buffered log records for the line are made durable, and (undo
// mode) a persist-bit line is persisted before the eviction (§III-A).
func (e *Engine) onL2Evict(l *cache.Line) {
	// Eviction handling is background hardware activity.
	e.m.PushAsync()
	defer e.m.PopAsync()
	if l.LogBits != 0 || e.sink.hasLine(l.Addr) {
		e.sink.flushLine(l.Addr)
	} else if _, ok := e.epochLogged[l.Addr]; ok {
		// A line committed into the open epoch evicts: its records were
		// spilled at the next Begin (log bits already cleared), but the
		// watermark may not cover them yet — sync before the data line
		// can reach PM.
		e.sink.flushLine(l.Addr)
	}
	if !l.Persist {
		return
	}
	if e.cfg.Mode == Redo {
		if e.cur.active {
			if cls, ok := e.cur.writeLines[l.Addr]; ok && cls&wsLogged != 0 {
				// Redo-logged data must not reach PM before the commit
				// record; the line stays dirty and its L3 writeback is
				// suppressed by the filter.
				return
			}
		}
		if _, ok := e.epochLogged[l.Addr]; ok {
			// Same fence at epoch granularity: data logged by a committed
			// window transaction waits for the epoch's commit marker.
			return
		}
	}
	e.m.ForcePersistLine(l.Addr)
	e.m.Stats.EvictLinePersists++
	l.Persist = false
	l.State = cache.Exclusive
}

// onL3Writeback retires lazy tracking for a line that reached PM by
// natural cache overflow.
func (e *Engine) onL3Writeback(addr mem.Addr) {
	for i := range e.retained {
		delete(e.retained[i].lazy, addr)
	}
}

// writebackFilter suppresses L3 writebacks of the current redo
// transaction's logged lines.
func (e *Engine) writebackFilter(addr mem.Addr) bool {
	if e.cur.active {
		if cls, ok := e.cur.writeLines[addr]; ok && cls&wsLogged != 0 {
			e.suppressed[addr] = struct{}{}
			return false
		}
	}
	if _, ok := e.epochLogged[addr]; ok {
		// Logged data committed into the open epoch must not reach PM
		// through a natural L3 writeback before the epoch's marker.
		e.suppressed[addr] = struct{}{}
		return false
	}
	return true
}

// Commit makes the transaction durable, enforcing the Figure 4 persist
// ordering for the configured log mode, discarding log records of lazily
// persistent lines, and retaining the working-set signature if lazy data
// remains volatile.
func (e *Engine) Commit() {
	if !e.cur.active {
		panic("engine: Commit outside a transaction")
	}
	e.m.Trace(trace.KCommitStart, 0, e.cur.seq)
	// Discard buffered records belonging to lazily persistent lines
	// (§III-B2): their data will not persist at commit, so an undo
	// record for them is unnecessary — the data is recoverable anyway.
	e.lazyKeyBuf = sortedKeys(e.lazyKeyBuf, e.cur.lazyLines)
	for _, la := range e.lazyKeyBuf {
		if n := e.sink.discardLine(la); n > 0 {
			e.m.Stats.LogRecordsDiscarded += uint64(n)
		}
	}
	if e.grouped() {
		e.commitGrouped()
	} else if e.cfg.Mode == Undo {
		e.commitUndo()
	} else {
		e.commitRedo()
	}
	// Retain the working set while lazy data is volatile (§III-C). The
	// lazy set's ownership moves to the retained entry; Begin replaces
	// it from the recycle pool.
	if len(e.cur.lazyLines) > 0 {
		e.m.Stats.LazyLinesDeferred += uint64(len(e.cur.lazyLines))
		// lazyKeyBuf still holds the sorted lazy set from the discard
		// walk above (the commit stages do not touch it).
		for _, la := range e.lazyKeyBuf {
			e.m.Trace(trace.KLazyDefer, la, e.cur.seq)
		}
		e.retained = append(e.retained, retainedTx{
			id:   e.cur.id,
			seq:  e.cur.seq,
			sig:  e.cur.sig,
			lazy: e.cur.lazyLines,
		})
		e.cur.lazyLines = nil
	} else {
		e.cur.sig.Clear()
	}
	e.cur.active = false
	e.m.Stats.TxCommits++
	e.m.Trace(trace.KTxCommit, 0, e.cur.seq)
	e.mirrorBufferStats()
	if e.grouped() && (e.epochTxns >= e.cfg.CommitWindow ||
		(e.cfg.EpochCycleBudget > 0 && e.m.Clk-e.epochClk >= e.cfg.EpochCycleBudget)) {
		e.closeEpoch()
	}
}

// mirrorBufferStats copies the tiered buffer's activity deltas into the
// machine counters so reports see coalescing behaviour.
func (e *Engine) mirrorBufferStats() {
	ts, ok := e.sink.(*tieredSink)
	if !ok {
		return
	}
	s := ts.stats()
	e.m.Stats.LogRecordsCoalesced = s.Coalesced
	e.m.Stats.LogBufferStalls = s.Stalls
}

// commitUndo: logs -> logged+log-free data lines -> commit record. The
// log drain streams through the buffer's packing engine (no per-line
// acknowledgement; one durability barrier at the end), then the data
// lines are persisted with per-line coherence acknowledgements.
func (e *Engine) commitUndo() {
	// Stage 1: drain the log buffer; the ordering barrier (Figure 4:
	// logs before logged data lines) waits for the streamed lines'
	// completion once, not per line — the commit engine pipelines.
	prev := e.m.SetCause(profile.CauseLogPersist)
	e.m.PushStream()
	e.sink.drain()
	e.m.PopStream()
	e.m.SetCause(prev)
	e.m.AckBarrier()
	// Stage 2: persist the marked data lines. The commit scan walks the
	// private caches line by line, issuing one coherence-level persist
	// request per line and waiting for its completion — the serialized
	// critical path that lazy persistency takes transactions off of.
	prev = e.m.SetCause(profile.CauseCommitData)
	e.persistMarkedLines()
	e.m.SetCause(prev)
	e.writeCommitMarker()
}

// commitRedo: log-free lines -> logs -> commit record -> logged lines.
func (e *Engine) commitRedo() {
	// 1. Log-free lines must reach PM before the logged data (Fig. 4).
	prev := e.m.SetCause(profile.CauseCommitData)
	e.wsKeyBuf = sortedKeys(e.wsKeyBuf, e.cur.writeLines)
	for _, la := range e.wsKeyBuf {
		if e.cur.writeLines[la]&wsLogged != 0 {
			continue
		}
		if _, lazy := e.cur.lazyLines[la]; lazy {
			continue
		}
		if e.m.PersistLine(la) {
			e.m.Stats.EagerLinePersists++
		}
	}
	// 2. Redo records (refreshed to final values) and commit marker.
	e.m.SetCause(profile.CauseLogPersist)
	e.m.PushStream()
	e.sink.drain()
	e.m.PopStream()
	e.m.SetCause(prev)
	e.m.AckBarrier()
	e.writeCommitMarker()
	// 3. Logged data lines (in-place update is now safe; wsKeyBuf still
	// holds the sorted write set from stage 1).
	prev = e.m.SetCause(profile.CauseCommitData)
	for _, la := range e.wsKeyBuf {
		if e.cur.writeLines[la]&wsLogged == 0 {
			continue
		}
		if _, lazy := e.cur.lazyLines[la]; lazy {
			continue
		}
		if _, wasSuppressed := e.suppressed[la]; wasSuppressed {
			e.m.ForcePersistLine(la)
			e.m.Stats.EagerLinePersists++
		} else if e.m.PersistLine(la) {
			e.m.Stats.EagerLinePersists++
		}
	}
	e.m.SetCause(prev)
	clear(e.suppressed)
	e.clearTxMeta()
}

// commitGrouped retires the transaction into the open epoch, deferring
// every ordering persist (watermark sync, durability barrier, data
// flush, commit marker) to the epoch close. Only cache metadata moves:
// log bits clear so the next transaction in the window logs its own
// old/new values for shared lines (making the epoch's record stream
// reversible/replayable as a whole), while persist bits survive until
// the close's data flush. The transaction's eager write-set lines and
// its non-lazy logged lines accumulate in the epoch sets.
func (e *Engine) commitGrouped() {
	id := lineID(e.cur.id)
	e.m.ForEachPrivate(func(level int, l *cache.Line) {
		if l.TxID == id {
			l.LogBits = 0
		}
	})
	e.wsKeyBuf = sortedKeys(e.wsKeyBuf, e.cur.writeLines)
	for _, la := range e.wsKeyBuf {
		if _, lazy := e.cur.lazyLines[la]; lazy {
			// Lazy lines keep their W=1 contract: no persist at any
			// commit point, records discarded, structure-recoverable.
			continue
		}
		cls := e.cur.writeLines[la]
		e.epochPending[la] |= cls
		if cls&wsLogged != 0 {
			e.epochLogged[la] = struct{}{}
		}
	}
	e.epochTxns++
	e.epochLastSeq = e.cur.seq
}

// forceCloseEpoch seals the open epoch ahead of an operation that
// needs the committed window durable (forced lazy drains, context
// switches, harness durability boundaries). A no-op below W=2 or when
// nothing has committed into the epoch. With a transaction mid-flight
// the stream splits at its first record and the epoch reopens around
// it.
func (e *Engine) forceCloseEpoch() {
	if !e.grouped() || !e.epochOpen || e.epochTxns == 0 {
		return
	}
	e.closeEpoch()
}

// FinishEpoch force-closes the open group-commit epoch, making every
// committed transaction of the window durable. Harnesses call it at
// durability boundaries (end of a setup phase, measured-region edges).
func (e *Engine) FinishEpoch() { e.forceCloseEpoch() }

// SetEpochCloseHook registers f to run after every epoch close, once
// the epoch's commit point is durable. The facade parks the heap's
// committed frees until this point (see txheap.EpochQuarantine):
// released at commit they could be reused — and scribbled with
// log-free stores — inside the same window, while the durable state
// still reaches the old blocks.
func (e *Engine) SetEpochCloseHook(f func()) { e.onEpochClose = f }

// closeEpoch seals the open epoch with the amortized ordering
// sequence of Figure 4 lifted to epoch granularity: one log drain +
// watermark sync, one durability barrier, the committed transactions'
// accumulated data persists, and a single commit-marker header write
// advancing CommittedTo over the whole window. With a transaction
// still running (a forced close) the stream instead splits at its
// first record: the header stays ACTIVE under a fresh epoch number
// with CommittedTo covering exactly the committed prefix, so recovery
// rolls back (undo) or ignores (redo) precisely the in-flight suffix.
// Clustered engines route through the group: cross-core value flow
// inside a window means per-core epochs must become durable together
// or not at all.
func (e *Engine) closeEpoch() {
	if e.group != nil {
		e.group.close(e)
		return
	}
	e.prepareSync()
	e.preparePersist()
	e.finishClose()
}

// prepareSync is the first phase of an epoch close: the window's one
// log drain + watermark sync and durability barrier. In a group close
// EVERY engine syncs before ANY engine persists data — a data line
// can hold words whose only undo records live in a peer's stream (the
// line migrated mid-window), and persisting it while those records
// are short of the peer's watermark would make the words unrecoverable
// if the crash fell in between.
func (e *Engine) prepareSync() {
	prevEpoch := e.m.SetCause(profile.CauseLogEpoch)
	e.epochKeyBuf = sortedKeys(e.epochKeyBuf, e.epochPending)

	// The window's one drain + sync; the barrier charges to log.epoch
	// (the AckBarrier picks up the active context) so the amortization
	// is visible per-cause next to the per-transaction log.sync bucket.
	prev := e.m.SetCause(profile.CauseLogPersist)
	e.m.PushStream()
	e.sink.drain()
	e.m.PopStream()
	e.m.SetCause(prev)
	e.m.AckBarrier()
	e.m.SetCause(prevEpoch)
}

// preparePersist is the second phase of an epoch close: the data
// persists that must precede the epoch's commit point. Undo mode
// persists the committed transactions' accumulated lines (their
// records are durably visible after prepareSync — lines shared with a
// still-running transaction are safe to persist mid-flight, a crash
// rolls the suffix back). Redo mode persists only the log-free lines:
// not covered by any record, they must be durable by the commit
// point, while logged lines wait for it.
func (e *Engine) preparePersist() {
	prevEpoch := e.m.SetCause(profile.CauseLogEpoch)
	prev := e.m.SetCause(profile.CauseCommitData)
	for _, la := range e.epochKeyBuf {
		if e.cfg.Mode == Redo && e.epochPending[la]&wsLogged != 0 {
			continue
		}
		if e.m.PersistLine(la) {
			e.m.Stats.EagerLinePersists++
		}
	}
	e.m.SetCause(prev)
	e.m.SetCause(prevEpoch)
}

// finishClose is the back half of an epoch close: the commit point
// (solo engines write their commit-marker header here; grouped
// engines had their commit point in the shared descriptor persist and
// the header write merely catches the durable header up) and
// everything ordered after it — redo logged-data persists, cache
// metadata retirement, epoch bookkeeping. A transaction running
// through the close reopens the stream around itself.
func (e *Engine) finishClose() {
	reopen := e.cur.active
	mode := uint64(logfmt.ModeUndo)
	if e.cfg.Mode == Redo {
		mode = logfmt.ModeRedo
	}
	prevEpoch := e.m.SetCause(profile.CauseLogEpoch)

	closed := e.epoch
	committedEnd := e.w.nextOff
	hdr := logfmt.Header{
		Magic:     logfmt.Magic,
		Mode:      mode,
		Watermark: e.w.nextOff,
		Epoch:     e.epoch,
	}
	if reopen {
		committedEnd = e.txnStartOff
		e.epoch++
		hdr.Epoch = e.epoch
		hdr.Seq = e.cur.seq
		hdr.State = logfmt.StateActive
		hdr.CommittedTo = e.txnStartOff
	} else {
		hdr.Seq = e.epochLastSeq
		hdr.State = logfmt.StateCommitted
		hdr.CommittedTo = e.w.nextOff
	}
	prev := e.m.SetCause(profile.CauseCommitMarker)
	e.w.writeHeader(hdr)
	e.m.SetCause(prev)

	if e.cfg.Mode == Redo {
		// Logged data lines persist only after the commit point. A line
		// a running transaction is also logging stays volatile (its new
		// epoch's commit point is not durable). Solo engines leave such
		// lines to the sharer's own stream — same stream, no reset
		// before a full close persists them. In a group the sharer is a
		// DIFFERENT core whose stream cannot cover this one's reset, so
		// the committed value is pinned into PM straight from the
		// records (durable-only; the volatile line keeps the in-flight
		// data).
		prev = e.m.SetCause(profile.CauseCommitData)
		var skipped []mem.Addr
		for _, la := range e.epochKeyBuf {
			if e.epochPending[la]&wsLogged == 0 {
				continue
			}
			if e.activeLogged(la) {
				if e.group != nil {
					skipped = append(skipped, la)
				}
				continue
			}
			if _, wasSuppressed := e.suppressed[la]; wasSuppressed {
				e.m.ForcePersistLine(la)
				e.m.Stats.EagerLinePersists++
				delete(e.suppressed, la)
			} else if e.m.PersistLine(la) {
				e.m.Stats.EagerLinePersists++
			}
		}
		if len(skipped) > 0 {
			e.shadowPersistCommitted(skipped, committedEnd)
			for _, la := range skipped {
				delete(e.suppressed, la)
			}
		}
		e.m.SetCause(prev)
	}
	e.clearEpochPersistBits()

	e.m.Trace(trace.KEpochClose, mem.Addr(mode-logfmt.ModeUndo), closed)
	e.m.Stats.EpochCloses++
	// The frontier advances only after the commit point persisted: a
	// crash during the close leaves closedSeq at the previous epoch,
	// and the durable image decides which prefix actually survived.
	e.closedSeq = e.epochLastSeq
	clear(e.epochPending)
	clear(e.epochLogged)
	e.epochTxns = 0
	if reopen {
		e.epochClk = e.m.Clk
	} else {
		e.epochOpen = false
	}
	e.m.SetCause(prevEpoch)
	if e.onEpochClose != nil {
		e.onEpochClose()
	}
}

// activeLogged reports whether the line is logged by a transaction
// running through the close — this engine's own, or any group peer's.
func (e *Engine) activeLogged(la mem.Addr) bool {
	if e.group != nil {
		return e.group.activeLogged(la)
	}
	if !e.cur.active {
		return false
	}
	cls, ok := e.cur.writeLines[la]
	return ok && cls&wsLogged != 0
}

// shadowPersistCommitted pins the committed values of the given lines
// into PM from this stream's own records: the committed region
// [RecordsStart, to) is replayed over the lines' durable images (last
// record per word wins — redo records carry new values) and the
// results are persisted WITHOUT touching the volatile lines, which
// hold a running transaction's newer, uncommitted data.
func (e *Engine) shadowPersistCommitted(lines []mem.Addr, to uint64) {
	raw := make([]byte, to)
	e.m.PM.Read(e.m.Layout.LogBase, raw)
	recs, err := logfmt.ParseRegion(raw, logfmt.RecordsStart, to)
	if err != nil {
		panic(fmt.Sprintf("engine: corrupt own log at epoch close: %v", err))
	}
	img := make(map[mem.Addr][]byte, len(lines))
	for _, la := range lines {
		buf := make([]byte, mem.LineSize)
		e.m.PM.Read(la, buf)
		img[la] = buf
	}
	for _, r := range recs {
		if logfmt.IsBoundary(r) {
			continue
		}
		src := 0
		mem.LineRange(r.Addr, len(r.Data), func(line mem.Addr, off, n int) {
			if buf, ok := img[line]; ok {
				copy(buf[off:off+n], r.Data[src:src+n])
			}
			src += n
		})
	}
	for _, la := range lines { // lines arrive sorted (epochKeyBuf order)
		e.m.PersistShadow(la, img[la])
	}
}

// clearEpochPersistBits retires the persist bits of the epoch's
// pending lines after the close's data flush, mirroring the W=1
// commit scan's metadata clear.
func (e *Engine) clearEpochPersistBits() {
	e.m.ForEachPrivate(func(level int, l *cache.Line) {
		if _, ok := e.epochPending[l.Addr]; ok {
			l.Persist = false
		}
	})
}

// persistMarkedLines scans the private caches (the hardware's commit
// scan, §II) persisting every line whose persist bit is set and clearing
// the transaction's metadata.
func (e *Engine) persistMarkedLines() {
	id := lineID(e.cur.id)
	e.m.ForEachPrivate(func(level int, l *cache.Line) {
		if l.TxID != id {
			return
		}
		if l.Persist {
			if e.m.PersistLine(l.Addr) {
				e.m.Stats.EagerLinePersists++
			}
			l.Persist = false
		}
		l.LogBits = 0
	})
}

// clearTxMeta clears persist/log bits of the transaction's lines after a
// redo commit.
func (e *Engine) clearTxMeta() {
	id := lineID(e.cur.id)
	e.m.ForEachPrivate(func(level int, l *cache.Line) {
		if l.TxID != id {
			return
		}
		l.Persist = false
		l.LogBits = 0
	})
}

// writeCommitMarker persists the committed state in the log header.
func (e *Engine) writeCommitMarker() {
	prev := e.m.SetCause(profile.CauseCommitMarker)
	defer e.m.SetCause(prev)
	mode := uint64(logfmt.ModeUndo)
	if e.cfg.Mode == Redo {
		mode = logfmt.ModeRedo
	}
	e.w.writeHeader(logfmt.Header{
		Magic:     logfmt.Magic,
		Seq:       e.cur.seq,
		State:     logfmt.StateCommitted,
		Mode:      mode,
		Watermark: e.w.nextOff,
	})
	// Addr encodes the log mode for the sanitizer: 0 undo, 1 redo.
	e.m.Trace(trace.KCommitMarker, mem.Addr(mode-logfmt.ModeUndo), e.cur.seq)
}

// abortGrouped revokes a transaction running under group commit. The
// committed prefix of the window seals first — closeEpoch with reopen
// splits the stream at the aborting transaction's first record and
// makes every committed transaction of the window durable — so the
// abort proper concerns only the record suffix [txnStartOff, nextOff).
// The caller (Abort) then runs the shared tail: dropping and restoring
// the transaction's logged lines and retiring the header to Idle.
func (e *Engine) abortGrouped() {
	if e.epochOpen && e.epochTxns > 0 {
		e.closeEpoch()
	} else if e.cfg.Mode == Undo {
		// Empty window, but the aborting transaction's buffered records
		// must still reach the log: restoring a line from the durable
		// image is only correct once every logged old value has been
		// applied back, and records buffered at abort time would
		// otherwise vanish.
		prev := e.m.SetCause(profile.CauseLogPersist)
		e.m.PushStream()
		e.sink.drain()
		e.m.PopStream()
		e.m.SetCause(prev)
		e.m.AckBarrier()
	} else {
		e.sink.clear()
	}
	raw := make([]byte, e.m.Layout.LogSize)
	e.m.PM.Read(e.m.Layout.LogBase, raw)
	if e.cfg.Mode == Undo {
		// Reverse-apply the suffix. Restoring straight from the durable
		// image (the W=1 path) would resurrect pre-EPOCH values — the
		// committed window transactions' data may have persisted only at
		// the close just issued — but their committed values are exactly
		// this transaction's logged old values, so applying the suffix
		// back restores them to cache and PM.
		recs, err := logfmt.ParseRegion(raw, e.txnStartOff, e.w.nextOff)
		if err != nil {
			panic(fmt.Sprintf("engine: corrupt own log on abort: %v", err))
		}
		for i := len(recs) - 1; i >= 0; i-- {
			if logfmt.IsBoundary(recs[i]) {
				continue
			}
			e.m.PersistData(recs[i].Addr, recs[i].Data)
		}
	} else {
		// Redo records of the aborting transaction are unwanted new
		// values and stay ignored (the marker's CommittedTo fences them
		// off). But committed logged lines this transaction also wrote
		// were left volatile by the close (the reopen skips lines shared
		// with the running transaction), so replay the committed region
		// forward to pin their committed values into cache and PM before
		// the header drops to Idle.
		recs, err := logfmt.ParseRegion(raw, logfmt.RecordsStart, e.txnStartOff)
		if err != nil {
			panic(fmt.Sprintf("engine: corrupt own log on abort: %v", err))
		}
		for _, r := range recs {
			if logfmt.IsBoundary(r) {
				continue
			}
			e.m.PersistData(r.Addr, r.Data)
		}
	}
	e.epochOpen = false
	e.epochTxns = 0
}

// Abort revokes the transaction (§V-B): buffered records and cached
// updates of logged lines are dropped, undo records that already reached
// PM are applied back to persistent data, and log-free lines are left
// for the caller's recovery code to repair.
func (e *Engine) Abort() {
	if !e.cur.active {
		panic("engine: Abort outside a transaction")
	}
	if e.grouped() {
		e.abortGrouped()
	} else {
		e.sink.clear()

		if e.cfg.Mode == Undo {
			// Apply durable undo records to persistent data (records for
			// never-evicted lines never reached PM; their volatile updates
			// are dropped below).
			raw := make([]byte, e.m.Layout.LogSize)
			e.m.PM.Read(e.m.Layout.LogBase, raw)
			recs, err := logfmt.ParseRecords(raw, e.cur.seq)
			if err != nil {
				panic(fmt.Sprintf("engine: corrupt own log on abort: %v", err))
			}
			for i := len(recs) - 1; i >= 0; i-- {
				e.m.PersistData(recs[i].Addr, recs[i].Data)
			}
		}
	}

	// Invalidate the transaction's logged lines and restore their
	// volatile contents from (now reverted) PM. Log-free lines keep
	// their updates; the caller's recovery reverts them structurally.
	e.wsKeyBuf = sortedKeys(e.wsKeyBuf, e.cur.writeLines)
	for _, la := range e.wsKeyBuf {
		if e.cur.writeLines[la]&wsLogged == 0 {
			continue
		}
		e.m.DropLine(la)
		e.m.RestoreLineFromDurable(la)
	}
	clear(e.suppressed)

	mode := uint64(logfmt.ModeUndo)
	if e.cfg.Mode == Redo {
		mode = logfmt.ModeRedo
	}
	e.w.writeHeader(logfmt.Header{
		Magic:     logfmt.Magic,
		Seq:       e.cur.seq,
		State:     logfmt.StateIdle,
		Mode:      mode,
		Watermark: logfmt.RecordsStart,
	})
	e.cur.sig.Clear()
	e.cur.active = false
	e.m.Stats.TxAborts++
	e.m.Trace(trace.KTxAbort, 0, e.cur.seq)
}

// WriteSetLines returns the current transaction's write-set line
// addresses (tests and the compiler's trace replay use this).
func (e *Engine) WriteSetLines() []mem.Addr {
	out := make([]mem.Addr, 0, len(e.cur.writeLines))
	for la := range e.cur.writeLines { //slpmt:determinism-ok: collected keys are sorted below
		out = append(out, la)
	}
	slices.Sort(out)
	return out
}

// ContextSwitch models the OS-visible part of a thread switch (§V-C):
// the kernel drains the log buffer so the outgoing thread's records are
// durable before another thread runs on the core. Lazy-persistency
// state (signatures, transaction-ID allocation) is untouched — it is
// not specific to a context — and an active transaction simply resumes
// when the thread is switched back in.
func (e *Engine) ContextSwitch() {
	e.forceCloseEpoch()
	prev := e.m.SetCause(profile.CauseLogPersist)
	e.m.PushStream()
	e.sink.drain()
	e.m.PopStream()
	e.m.SetCause(prev)
	e.m.AckBarrier()
}
