package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
)

// refModel is the engine's correctness oracle: a flat byte array with
// transactional undo semantics. Logged stores are revertible; log-free
// stores are not (their post-crash value is unspecified mid-transaction,
// so the model tracks them as "wild" until commit).
type refModel struct {
	committed []byte            // state as of the last commit
	current   []byte            // state including the open transaction
	wild      map[mem.Addr]bool // log-free bytes written by the open txn
	inTx      bool
}

func newRef(size int) *refModel {
	return &refModel{
		committed: make([]byte, size),
		current:   make([]byte, size),
		wild:      map[mem.Addr]bool{},
	}
}

func (r *refModel) begin() { r.inTx = true }

func (r *refModel) store(addr mem.Addr, data []byte, logged bool) {
	copy(r.current[addr:], data)
	if !logged {
		for i := range data {
			r.wild[addr+mem.Addr(i)] = true
		}
	}
}

func (r *refModel) commit() {
	copy(r.committed, r.current)
	r.wild = map[mem.Addr]bool{}
	r.inTx = false
}

// randomProgram drives the engine and the reference model in lockstep,
// optionally crashing at a given persist event; it returns the machine
// (for its durable image), the model, and whether the crash fired.
func randomProgram(seed int64, cfg Config, crashAt uint64) (m *machine.Core, ref *refModel, crashed bool) {
	rng := rand.New(rand.NewSource(seed))
	m = machine.New(machine.Config{}).Core(0)
	e := New(m, cfg)
	m.CrashAfter = crashAt

	const span = 64 * mem.LineSize // working region
	base := m.Layout.HeapBase
	ref = newRef(int(base) + span)

	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(machine.CrashSignal); !ok {
				panic(r)
			}
			crashed = true
		}
	}()

	for txn := 0; txn < 12; txn++ {
		e.Begin()
		ref.begin()
		ops := rng.Intn(24) + 1
		for i := 0; i < ops; i++ {
			addr := base + mem.Addr(rng.Intn(span/8)*8)
			switch rng.Intn(10) {
			case 0, 1: // load
				e.LoadU64(addr)
			case 2: // log-free store
				v := rng.Uint64()
				e.StoreU64(addr, v, isa.StoreT, isa.LogFree)
				ref.store(addr, u64le(v), !cfgHonors(cfg))
			case 3: // multi-word logged store, possibly unaligned
				n := (rng.Intn(4) + 1) * 8
				data := make([]byte, n)
				rng.Read(data)
				e.Store(addr, data, isa.Store, isa.Plain)
				ref.store(addr, data, true)
			default: // plain logged word store
				v := rng.Uint64()
				e.StoreU64(addr, v, isa.Store, isa.Plain)
				ref.store(addr, u64le(v), true)
			}
		}
		e.Commit()
		ref.commit()
	}
	e.DrainLazy()
	return m, ref, false
}

func cfgHonors(cfg Config) bool { return cfg.Caps.HonorLogFree }

func u64le(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
	return b
}

// TestPropertyVolatileMatchesModel: without crashes, the engine's
// volatile view and (after a drain) the durable image both equal the
// reference model, for every scheme-relevant configuration.
func TestPropertyVolatileMatchesModel(t *testing.T) {
	cfgs := []Config{slpmtCfg(), fgCfg()}
	lineCfg := slpmtCfg()
	lineCfg.Granularity = Line
	directCfg := fgCfg()
	directCfg.Buffer = BufferDirect
	specCfg := slpmtCfg()
	specCfg.Speculative = true
	cfgs = append(cfgs, lineCfg, directCfg, specCfg)

	for seed := int64(1); seed <= 8; seed++ {
		for _, cfg := range cfgs {
			m, ref, crashed := randomProgram(seed, cfg, 0)
			if crashed {
				t.Fatal("unexpected crash")
			}
			base := m.Layout.HeapBase
			span := 64 * mem.LineSize
			vol := make([]byte, span)
			m.ReadMem(base, vol)
			if !bytes.Equal(vol, ref.current[base:int(base)+span]) {
				t.Fatalf("seed %d cfg %s: volatile state diverged from model", seed, cfg.String())
			}
			dur := make([]byte, span)
			m.PM.Read(base, dur)
			if !bytes.Equal(dur, ref.committed[base:int(base)+span]) {
				t.Fatalf("seed %d cfg %s: durable state diverged from model", seed, cfg.String())
			}
		}
	}
}

// TestPropertyCrashRecovery: at every sampled crash point of a random
// program, applying the hardware undo log to the crash image restores
// every LOGGED byte to the last committed state; log-free bytes may
// hold either the committed or the in-flight value (the application
// contract), and nothing else.
func TestPropertyCrashRecovery(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		// Reference run to learn the event count.
		mRef, _, _ := randomProgram(seed, slpmtCfg(), 0)
		total := mRef.PersistCount
		for point := uint64(3); point <= total; point += 13 {
			m, ref, crashed := randomProgram(seed, slpmtCfg(), point)
			if !crashed {
				continue
			}
			img := m.Crash()
			// If the crash fell between the in-flight transaction's
			// commit record and its return, that transaction is durable:
			// the model's current state is the expected image.
			layout := mem.DefaultLayout(uint64(len(img.Data)))
			hdr := logfmt.DecodeHeader(img.Data[layout.LogBase:])
			inFlightCommitted := hdr.State == logfmt.StateCommitted && ref.inTx

			if _, err := applyForTest(img); err != nil {
				t.Fatalf("seed %d point %d: %v", seed, point, err)
			}
			base := m.Layout.HeapBase
			span := 64 * mem.LineSize
			for off := 0; off < span; off++ {
				a := base + mem.Addr(off)
				got := img.Data[a]
				want := ref.committed[a]
				if inFlightCommitted {
					want = ref.current[a]
				}
				if got == want {
					continue
				}
				// Divergence is only permitted for in-flight log-free
				// bytes (the application's recovery contract) — and
				// then only to the in-flight value.
				if ref.wild[a] && got == ref.current[a] {
					continue
				}
				t.Fatalf("seed %d point %d: byte %#x = %#x, committed %#x (wild=%v, inflight=%#x)",
					seed, point, a, got, want, ref.wild[a], ref.current[a])
			}
		}
	}
}

// applyForTest applies the undo log of an ACTIVE transaction in the
// image (a local copy of the recovery package's phase 1, kept here to
// avoid an import cycle in tests).
func applyForTest(img *pmem.Image) (int, error) {
	layout := mem.DefaultLayout(uint64(len(img.Data)))
	raw := img.Data[layout.LogBase : layout.LogBase+layout.LogSize]
	hdr := logfmt.DecodeHeader(raw)
	if hdr.Magic != logfmt.Magic || hdr.State != logfmt.StateActive || hdr.Mode != logfmt.ModeUndo {
		return 0, nil
	}
	recs, err := logfmt.ParseRecords(raw, hdr.Seq)
	if err != nil {
		return 0, err
	}
	for i := len(recs) - 1; i >= 0; i-- {
		img.Write(recs[i].Addr, recs[i].Data)
	}
	return len(recs), nil
}
