package engine

// Micro-benchmarks of the simulator substrates themselves — the
// library's own performance, not paper figures. Run with
// `go test -bench=Micro ./internal/engine`.

import (
	"fmt"
	"testing"

	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/logbuf"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/signature"
)

func BenchmarkMicroTransactionRoundTrip(b *testing.B) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Begin()
		a := base + mem.Addr(i%4096)*mem.LineSize
		e.StoreU64(a, uint64(i), isa.Store, isa.Plain)
		e.StoreU64(a+8, uint64(i), isa.StoreT, isa.LogFree)
		e.Commit()
	}
	b.ReportMetric(float64(m.Clk)/float64(b.N), "simcycles/txn")
}

func BenchmarkMicroStoreLogged(b *testing.B) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.StoreU64(base+mem.Addr(i%(1<<15))*8, uint64(i), isa.Store, isa.Plain)
		if i%4096 == 4095 {
			// Bound the transaction size (the log area holds ~256k
			// word records per transaction).
			e.Commit()
			e.Begin()
		}
	}
	b.StopTimer()
	e.Commit()
	_ = m
}

func BenchmarkMicroLoadHit(b *testing.B) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LoadU64(base)
	}
	b.StopTimer()
	e.Commit()
	_ = m
}

// BenchmarkMicroLogWriterAppendSync measures the raw logWriter: one
// record appended per "transaction", with the watermark sync amortized
// over a window of 1 (per-transaction protocol) or 16 (group commit).
// The append/sync path itself is allocation-free — the record payload
// rides in a caller-reused buffer and the writer packs it into its
// line staging without copying out.
func BenchmarkMicroLogWriterAppendSync(b *testing.B) {
	for _, window := range []int{1, 16} {
		b.Run(fmt.Sprintf("w%d", window), func(b *testing.B) {
			w, m := newWriter()
			payload := make([]byte, 8)
			r := logbuf.Record{Addr: 0x1000, Data: payload}
			limit := m.Layout.LogSize - 4096
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Addr = mem.Addr(0x1000 + (i%512)*8)
				w.append(r)
				if (i+1)%window == 0 {
					w.sync()
				}
				if w.nextOff >= limit {
					b.StopTimer()
					w.reset(uint64(i))
					b.StartTimer()
				}
			}
			b.StopTimer()
			w.sync()
		})
	}
}

// BenchmarkMicroLogAppendSync drives the full engine commit path in
// steady state, per-transaction (w1) against group commit (w16) —
// the end-to-end cost the logWriter benchmark isolates.
func BenchmarkMicroLogAppendSync(b *testing.B) {
	for _, w := range []int{1, 16} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			cfg := slpmtCfg()
			cfg.CommitWindow = w
			e, m := newEng(cfg)
			base := m.Layout.HeapBase
			// Warm the working set and the epoch maps.
			for i := 0; i < 64; i++ {
				e.Begin()
				e.StoreU64(base+mem.Addr(i%16)*mem.LineSize, uint64(i), isa.Store, isa.Plain)
				e.Commit()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Begin()
				e.StoreU64(base+mem.Addr(i%16)*mem.LineSize, uint64(i), isa.Store, isa.Plain)
				e.Commit()
			}
			b.StopTimer()
			e.FinishEpoch()
			b.ReportMetric(float64(m.Clk)/float64(b.N), "simcycles/txn")
		})
	}
}

func BenchmarkMicroLogBufferInsert(b *testing.B) {
	buf := logbuf.New(func([]logbuf.Record) {})
	data := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Insert(logbuf.Record{Addr: mem.Addr(i%(1<<16)) * 8, Data: data})
	}
}

func BenchmarkMicroSignature(b *testing.B) {
	var s signature.Signature
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.Addr(i) * mem.LineSize
		s.Add(a)
		if !s.MayContain(a) {
			b.Fatal("false negative")
		}
	}
}
