package engine

// Micro-benchmarks of the simulator substrates themselves — the
// library's own performance, not paper figures. Run with
// `go test -bench=Micro ./internal/engine`.

import (
	"testing"

	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/logbuf"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/signature"
)

func BenchmarkMicroTransactionRoundTrip(b *testing.B) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Begin()
		a := base + mem.Addr(i%4096)*mem.LineSize
		e.StoreU64(a, uint64(i), isa.Store, isa.Plain)
		e.StoreU64(a+8, uint64(i), isa.StoreT, isa.LogFree)
		e.Commit()
	}
	b.ReportMetric(float64(m.Clk)/float64(b.N), "simcycles/txn")
}

func BenchmarkMicroStoreLogged(b *testing.B) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.StoreU64(base+mem.Addr(i%(1<<15))*8, uint64(i), isa.Store, isa.Plain)
		if i%4096 == 4095 {
			// Bound the transaction size (the log area holds ~256k
			// word records per transaction).
			e.Commit()
			e.Begin()
		}
	}
	b.StopTimer()
	e.Commit()
	_ = m
}

func BenchmarkMicroLoadHit(b *testing.B) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LoadU64(base)
	}
	b.StopTimer()
	e.Commit()
	_ = m
}

func BenchmarkMicroLogBufferInsert(b *testing.B) {
	buf := logbuf.New(func([]logbuf.Record) {})
	data := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Insert(logbuf.Record{Addr: mem.Addr(i%(1<<16)) * 8, Data: data})
	}
}

func BenchmarkMicroSignature(b *testing.B) {
	var s signature.Signature
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.Addr(i) * mem.LineSize
		s.Add(a)
		if !s.MayContain(a) {
			b.Fatal("false negative")
		}
	}
}
