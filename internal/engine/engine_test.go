package engine

import (
	"testing"

	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
)

func slpmtCfg() Config {
	return Config{
		Name:        "SLPMT",
		Caps:        isa.Caps{HonorLogFree: true, HonorLazy: true},
		Granularity: Word,
		Mode:        Undo,
		Buffer:      BufferTiered,
	}
}

func fgCfg() Config {
	c := slpmtCfg()
	c.Name = "FG"
	c.Caps = isa.Caps{}
	return c
}

func newEng(cfg Config) (*Engine, *machine.Core) {
	m := machine.New(machine.Config{}).Core(0)
	e := New(m, cfg)
	return e, m
}

func TestTableIOnCacheBits(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	cases := []struct {
		attr    isa.Attr
		kind    isa.Kind
		persist bool
		logged  bool
	}{
		{isa.Plain, isa.Store, true, true},
		{isa.LogFree, isa.StoreT, true, false},
		{isa.LazyLogFree, isa.StoreT, false, false},
		{isa.LazyLogged, isa.StoreT, false, true},
	}
	for i, c := range cases {
		a := base + mem.Addr(i)*mem.LineSize
		e.StoreU64(a, 1, c.kind, c.attr)
		l := m.L1.Peek(a)
		if l == nil {
			t.Fatalf("case %d: line not cached", i)
		}
		if l.Persist != c.persist {
			t.Errorf("case %d: persist bit %v, want %v", i, l.Persist, c.persist)
		}
		if (l.LogBits != 0) != c.logged {
			t.Errorf("case %d: log bits %#x, want logged=%v", i, l.LogBits, c.logged)
		}
		if l.TxID != lineID(0) {
			t.Errorf("case %d: txid %d", i, l.TxID)
		}
	}
	e.Commit()
}

func TestBaselineIgnoresStoreT(t *testing.T) {
	e, m := newEng(fgCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.StoreT, isa.LazyLogFree)
	l := m.L1.Peek(base)
	if !l.Persist || l.LogBits == 0 {
		t.Error("FG baseline must treat storeT as store")
	}
	e.Commit()
	if e.RetainedLazyLines() != 0 {
		t.Error("FG baseline deferred data")
	}
}

func TestWordGranularLogging(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	e.StoreU64(base+8, 2, isa.Store, isa.Plain)
	if got := m.Stats.LogRecordsCreated; got != 2 {
		t.Errorf("records created = %d, want 2", got)
	}
	// Re-store to a logged word: no new record.
	e.StoreU64(base, 3, isa.Store, isa.Plain)
	if got := m.Stats.LogRecordsCreated; got != 2 {
		t.Errorf("re-store created a record (total %d)", got)
	}
	l := m.L1.Peek(base)
	if l.LogBits != 0x03 {
		t.Errorf("log bits = %#x, want 0x03", l.LogBits)
	}
	e.Commit()
}

func TestLineGranularLogging(t *testing.T) {
	cfg := slpmtCfg()
	cfg.Granularity = Line
	e, m := newEng(cfg)
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	e.StoreU64(base+32, 2, isa.Store, isa.Plain)
	if got := m.Stats.LogRecordsCreated; got != 1 {
		t.Errorf("line-granular records = %d, want 1", got)
	}
	if got := m.Stats.LogBytesPersisted; got != 0 && got != 72 {
		t.Errorf("unexpected log bytes before commit: %d", got)
	}
	e.Commit()
	if got := m.Stats.LogBytesPersisted; got != 72 {
		t.Errorf("persisted log bytes = %d, want 72 (one line record)", got)
	}
	e.Begin()
	e.Commit()
}

// TestUndoCommitDurability: after Commit returns, every logged and
// log-free store is durable.
func TestUndoCommitDurability(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 11, isa.Store, isa.Plain)
	e.StoreU64(base+mem.LineSize, 22, isa.StoreT, isa.LogFree)
	e.Commit()
	if m.PM.ReadU64(base) != 11 || m.PM.ReadU64(base+mem.LineSize) != 22 {
		t.Error("committed data not durable")
	}
	raw := make([]byte, 256)
	m.PM.Read(m.Layout.LogBase, raw)
	hdr := logfmt.DecodeHeader(raw)
	if hdr.State != logfmt.StateCommitted {
		t.Errorf("log state = %d, want committed", hdr.State)
	}
}

// TestLazyDeferredThenForcedBySignature: lazy data stays volatile after
// commit; a store hitting the retained working set forces it durable
// before proceeding.
func TestLazyDeferredThenForcedBySignature(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	lazyAddr := base
	wsAddr := base + 4*mem.LineSize

	e.Begin()
	e.LoadU64(wsAddr) // read set
	e.StoreU64(lazyAddr, 123, isa.StoreT, isa.LazyLogFree)
	e.Commit()

	if e.RetainedLazyLines() != 1 {
		t.Fatalf("retained lazy lines = %d, want 1", e.RetainedLazyLines())
	}
	if m.PM.ReadU64(lazyAddr) == 123 {
		t.Fatal("lazy data persisted eagerly")
	}

	// A store to the read-set address (outside any transaction, as the
	// paper allows) must force the lazy line durable first.
	e.StoreU64(wsAddr, 9, isa.Store, isa.Plain)
	if m.PM.ReadU64(lazyAddr) != 123 {
		t.Fatal("working-set conflict did not force the lazy persist")
	}
	if e.RetainedLazyLines() != 0 {
		t.Error("retained entry not released")
	}
	if m.Stats.SignatureHits == 0 {
		t.Error("signature hit not counted")
	}
}

// TestLazyForcedByLineOwnerCheck: touching a cache line whose TxID
// belongs to a retained transaction forces its lazy data durable.
func TestLazyForcedByLineOwnerCheck(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 55, isa.StoreT, isa.LazyLogFree)
	e.Commit()
	if m.PM.ReadU64(base) == 55 {
		t.Fatal("lazy data persisted eagerly")
	}
	// A later transaction loading the lazy line triggers the TxID check.
	e.Begin()
	e.LoadU64(base)
	e.Commit()
	if m.PM.ReadU64(base) != 55 {
		t.Error("line-owner check did not force the lazy persist")
	}
	if m.Stats.TxIDCrossAccess == 0 {
		t.Error("cross-access not counted")
	}
}

// TestLazyCancelledByLaterStore: an eager store to a lazily persistent
// line sets the persist bit, so the line persists at that commit
// (§III-C1).
func TestLazyCancelledByLaterStore(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.StoreT, isa.LazyLogFree)
	e.StoreU64(base+8, 2, isa.Store, isa.Plain) // same line, eager
	e.Commit()
	if m.PM.ReadU64(base) != 1 || m.PM.ReadU64(base+8) != 2 {
		t.Error("line with cancelled lazy persistence not durable at commit")
	}
	if e.RetainedLazyLines() != 0 {
		t.Error("cancelled lazy line still tracked")
	}
}

// TestLazyLoggedRecordDiscard: a lazy+logged line still in cache at
// commit has its buffered undo record discarded (§III-B2).
func TestLazyLoggedRecordDiscard(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.StoreT, isa.LazyLogged)
	e.Commit()
	if m.Stats.LogRecordsDiscarded != 1 {
		t.Errorf("discarded = %d, want 1", m.Stats.LogRecordsDiscarded)
	}
	if m.Stats.LogRecordsPersisted != 0 {
		t.Errorf("discarded record reached PM")
	}
}

// TestTxIDRecycleForcesPersist: the fifth transaction reuses the first
// ID, forcing the first transaction's lazy data durable.
func TestTxIDRecycleForcesPersist(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 77, isa.StoreT, isa.LazyLogFree)
	e.Commit()
	for i := 0; i < NumTxIDs-1; i++ {
		e.Begin()
		e.Commit()
	}
	if m.PM.ReadU64(base) == 77 {
		t.Fatal("lazy data persisted too early")
	}
	e.Begin() // reuses ID 0
	e.Commit()
	if m.PM.ReadU64(base) != 77 {
		t.Error("ID recycle did not force the persist")
	}
	if m.Stats.TxIDRecycles == 0 {
		t.Error("recycle not counted")
	}
}

// TestAbortRestoresLoggedData: §V-B.
func TestAbortRestoresLoggedData(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	e.Commit()
	e.Begin()
	e.StoreU64(base, 2, isa.Store, isa.Plain)
	e.StoreU64(base+mem.LineSize, 3, isa.StoreT, isa.LogFree)
	e.Abort()
	if got := e.LoadU64(base); got != 1 {
		t.Errorf("volatile after abort = %d, want 1", got)
	}
	if m.PM.ReadU64(base) != 1 {
		t.Errorf("durable after abort = %d, want 1", m.PM.ReadU64(base))
	}
	// Log-free data is the application recovery's job; the engine
	// leaves it (here: still volatile or scribbled, but unreachable).
	if m.Stats.TxAborts != 1 {
		t.Error("abort not counted")
	}
}

// TestDuplicateLoggingAfterL3RoundTrip: §III-B1 — a line whose log bits
// were lost in L3 is re-logged on the next store.
func TestDuplicateLoggingAfterL3RoundTrip(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	// Push the line to L3 (same-set stride for both L1 and L2).
	for i := 1; i <= 20; i++ {
		e.LoadU64(base + mem.Addr(i)*64*1024)
	}
	if m.L1.Peek(base) != nil || m.L2.Peek(base) != nil {
		t.Fatal("line still in private caches")
	}
	e.StoreU64(base, 2, isa.Store, isa.Plain)
	if m.Stats.LogDuplicates != 1 {
		t.Errorf("duplicates = %d, want 1", m.Stats.LogDuplicates)
	}
	e.Commit()
}

// TestSpeculativeLogging: with the §III-B1 optimization, evicting a
// partially logged 32-byte group creates speculative records so the
// folded bit survives.
func TestSpeculativeLogging(t *testing.T) {
	cfg := slpmtCfg()
	cfg.Speculative = true
	e, m := newEng(cfg)
	base := m.Layout.HeapBase
	e.Begin()
	// Log 3 of the 4 words of the low group.
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	e.StoreU64(base+8, 2, isa.Store, isa.Plain)
	e.StoreU64(base+16, 3, isa.Store, isa.Plain)
	// Evict from L1 (8 conflicting lines).
	for i := 1; i <= 8; i++ {
		e.LoadU64(base + mem.Addr(i)*64*64)
	}
	if m.Stats.SpeculativeRecords != 1 {
		t.Errorf("speculative records = %d, want 1", m.Stats.SpeculativeRecords)
	}
	l2 := m.L2.Peek(base)
	if l2 == nil || l2.LogBits&0x01 == 0 {
		t.Error("folded log bit lost despite speculation")
	}
	e.Commit()
}

// TestRedoCommitOrdering: under redo logging, a crash before the commit
// record leaves old durable values; after it, recovery replay yields
// the new ones.
func TestRedoDurability(t *testing.T) {
	cfg := slpmtCfg()
	cfg.Mode = Redo
	e, m := newEng(cfg)
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	e.Commit()

	e.Begin()
	e.StoreU64(base, 2, isa.Store, isa.Plain)
	// Mid-transaction: durable value must still be old.
	if m.PM.ReadU64(base) != 1 {
		t.Fatalf("redo leaked new value before commit")
	}
	e.Commit()
	if m.PM.ReadU64(base) != 2 {
		t.Fatal("redo commit did not persist new value")
	}
	// The redo log records the final values for replay.
	raw := make([]byte, 4096)
	m.PM.Read(m.Layout.LogBase, raw)
	hdr := logfmt.DecodeHeader(raw)
	if hdr.State != logfmt.StateCommitted || hdr.Mode != logfmt.ModeRedo {
		t.Fatalf("header %+v", hdr)
	}
	recs, err := logfmt.ParseRecords(raw, hdr.Seq)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Addr == base && len(r.Data) >= 8 && r.Data[0] == 2 {
			found = true
		}
	}
	if !found {
		t.Error("redo log missing final value record")
	}
}

// TestNonTransactionalStoreChecksConflicts: stores outside transactions
// still trigger lazy-persistency enforcement (§III-C).
func TestNonTransactionalStore(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 5, isa.StoreT, isa.LazyLogFree)
	e.Commit()
	e.StoreU64(base, 6, isa.Store, isa.Plain) // outside txn, same line
	if m.PM.ReadU64(base) != 5 {
		t.Error("lazy line not forced durable before the overwrite")
	}
	if got := e.LoadU64(base); got != 6 {
		t.Errorf("volatile = %d, want 6", got)
	}
}

// TestUndoOrderingUnderCrash: mini crash campaign over a single
// transaction — at every persist-event crash point, recovery restores
// either the complete old state or (after the marker) the new one.
func TestUndoOrderingUnderCrash(t *testing.T) {
	run := func(crashAt uint64) (crashed bool, img interface {
		ReadU64(uint64) uint64
	}, total uint64) {
		e, m := newEng(slpmtCfg())
		base := m.Layout.HeapBase
		// Committed baseline.
		e.Begin()
		for i := 0; i < 4; i++ {
			e.StoreU64(base+mem.Addr(i)*mem.LineSize, 100+uint64(i), isa.Store, isa.Plain)
		}
		e.Commit()
		m.CrashAfter = 0
		startEvents := m.PersistCount
		m.CrashAfter = startEvents + crashAt

		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(machine.CrashSignal); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			e.Begin()
			for i := 0; i < 4; i++ {
				e.StoreU64(base+mem.Addr(i)*mem.LineSize, 200+uint64(i), isa.Store, isa.Plain)
			}
			e.Commit()
		}()
		return crashed, m.PM, m.PersistCount - startEvents
	}

	_, _, total := run(1 << 30)
	for pt := uint64(1); pt <= total; pt++ {
		crashed, pm, _ := run(pt)
		if !crashed {
			continue
		}
		e2, m2 := newEng(slpmtCfg())
		_ = e2
		base := m2.Layout.HeapBase
		// Recover: parse the log from the crashed device's state.
		raw := make([]byte, 4096)
		pmDev := pm
		_ = pmDev
		// Read header+records through the image-equivalent interface.
		hdrSeq := pm.ReadU64(m2.Layout.LogBase + logfmt.OffSeq)
		state := pm.ReadU64(m2.Layout.LogBase + logfmt.OffState)
		_ = raw
		old := pm.ReadU64(base)
		if state == logfmt.StateCommitted && hdrSeq == 2 {
			// Post-marker: all new values must already be durable.
			for i := 0; i < 4; i++ {
				if got := pm.ReadU64(uint64(base) + uint64(i)*mem.LineSize); got != 200+uint64(i) {
					t.Fatalf("crash@%d: committed txn incomplete: word %d = %d", pt, i, got)
				}
			}
		} else if state == logfmt.StateActive && hdrSeq == 2 {
			// Pre-marker: old values must be recoverable; this is
			// exercised end-to-end by the recovery package's campaign,
			// so here we only require that any durable new value has a
			// durable undo record (watermark covers it) — checked by
			// the full campaign; minimal sanity: line 0 is either old
			// or new, never garbage.
			if old != 100 && old != 200 {
				t.Fatalf("crash@%d: torn value %d", pt, old)
			}
		}
	}
}

// TestContextSwitch (§V-C): a switch mid-transaction drains the log
// buffer; the transaction resumes and commits normally, and a crash
// right after the switch is recoverable because the records are
// durable.
func TestContextSwitch(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	buffered := len(e.sink.buffered())
	if buffered == 0 {
		t.Fatal("expected a buffered record before the switch")
	}
	e.ContextSwitch()
	if len(e.sink.buffered()) != 0 {
		t.Error("context switch did not drain the log buffer")
	}
	if m.Stats.LogRecordsPersisted == 0 {
		t.Error("drained records did not reach PM")
	}
	// The transaction resumes: more stores, then a normal commit.
	e.StoreU64(base+8, 2, isa.Store, isa.Plain)
	e.Commit()
	if m.PM.ReadU64(base) != 1 || m.PM.ReadU64(base+8) != 2 {
		t.Error("post-switch commit not durable")
	}
	// And the lazy machinery survived the switch.
	e.Begin()
	e.StoreU64(base+mem.LineSize, 9, isa.StoreT, isa.LazyLogFree)
	e.ContextSwitch()
	e.Commit()
	if e.RetainedLazyLines() != 1 {
		t.Error("lazy tracking lost across context switch")
	}
	e.DrainLazy()
}

// TestIncorrectLogFreeAnnotation (§IV-A): wrongly marking a store
// log-free undermines recoverability only within its own transaction —
// "such threats do not span across transaction commits." Before commit,
// the un-logged overwrite cannot be reverted; once the transaction
// commits, subsequent transactions log the line normally again.
func TestIncorrectLogFreeAnnotation(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	e.Commit()

	// A later transaction incorrectly marks an overwrite log-free...
	e.Begin()
	e.StoreU64(base, 2, isa.StoreT, isa.LogFree)
	before := m.Stats.LogRecordsCreated
	e.Commit()
	if m.Stats.LogRecordsCreated != before {
		t.Error("log-free store created a record")
	}
	// ...but the damage ends at its commit: the NEXT transaction's
	// store to the same word is logged and fully revertible.
	e.Begin()
	e.StoreU64(base, 3, isa.Store, isa.Plain)
	e.Abort()
	if got := e.LoadU64(base); got != 2 {
		t.Errorf("post-abort value = %d, want 2 (the committed value)", got)
	}
	if m.PM.ReadU64(base) != 2 {
		t.Errorf("durable = %d, want 2", m.PM.ReadU64(base))
	}
}

// TestIncorrectLazyAnnotation (§IV-A): wrongly marking a store lazy
// never hurts recoverability — only freshness. A crash after commit may
// lose the up-to-date value, reverting to the last durable one; a crash
// during the transaction is fully handled by the undo log.
func TestIncorrectLazyAnnotation(t *testing.T) {
	e, m := newEng(slpmtCfg())
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 1, isa.Store, isa.Plain)
	e.Commit()

	e.Begin()
	e.StoreU64(base, 2, isa.StoreT, isa.LazyLogged) // "incorrectly" lazy
	e.Commit()
	// Crash now: the line is volatile; the durable image holds the OLD
	// committed value — stale but consistent.
	img := m.Crash()
	if got := img.ReadU64(base); got != 1 {
		t.Errorf("crash image = %d, want the stale-but-consistent 1", got)
	}
	// Without a crash, the hardware eventually persists it.
	e.DrainLazy()
	if m.PM.ReadU64(base) != 2 {
		t.Error("lazy value never became durable")
	}
}
