package engine

import (
	"testing"

	"github.com/persistmem/slpmt/internal/logbuf"
	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
)

func newWriter() (*logWriter, *machine.Core) {
	m := machine.New(machine.Config{}).Core(0)
	w := newLogWriter(m)
	w.reset(1)
	w.writeHeader(logfmt.Header{
		Magic: logfmt.Magic, Seq: 1, State: logfmt.StateActive,
		Mode: logfmt.ModeUndo, Watermark: logfmt.RecordsStart,
	})
	return w, m
}

func rec(addr mem.Addr, n int, fill byte) logbuf.Record {
	d := make([]byte, n)
	for i := range d {
		d[i] = fill
	}
	return logbuf.Record{Addr: addr, Data: d}
}

func parse(m *machine.Core) []logfmt.Record {
	raw := make([]byte, 8<<10)
	m.PM.Read(m.Layout.LogBase, raw)
	recs, err := logfmt.ParseRecords(raw, 1)
	if err != nil {
		panic(err)
	}
	return recs
}

// TestWriterPacksRecordsIntoLines: three 16-byte records plus one
// 72-byte record pack into two 64-byte log lines plus a partial tail.
func TestWriterPacksRecordsIntoLines(t *testing.T) {
	w, m := newWriter()
	logLinesBefore := m.Stats.PMWriteBytesLog
	w.append(rec(0x1000, 8, 1))
	w.append(rec(0x2000, 8, 2))
	w.append(rec(0x3000, 8, 3))
	w.append(rec(0x4000, 64, 4))
	// 3*16 + 72 = 120 bytes -> one full line flushed during appends.
	flushed := (m.Stats.PMWriteBytesLog - logLinesBefore) / 64
	if flushed != 1 {
		t.Errorf("full lines flushed = %d, want 1", flushed)
	}
	// Nothing is visible to recovery before sync (watermark).
	if got := parse(m); len(got) != 0 {
		t.Fatalf("records visible before sync: %d", len(got))
	}
	w.sync()
	got := parse(m)
	if len(got) != 4 {
		t.Fatalf("parsed %d records after sync, want 4", len(got))
	}
	if got[3].Addr != 0x4000 || len(got[3].Data) != 64 || got[3].Data[0] != 4 {
		t.Error("line record payload wrong")
	}
}

// TestWriterSyncIsIdempotent: repeated syncs with no new records write
// the header/tail at most once more.
func TestWriterSyncIsIdempotent(t *testing.T) {
	w, m := newWriter()
	w.append(rec(0x1000, 8, 9))
	w.sync()
	entries := m.Stats.PMWriteEntries
	w.sync()
	if m.Stats.PMWriteEntries > entries+1 {
		t.Errorf("redundant sync wrote %d extra entries", m.Stats.PMWriteEntries-entries)
	}
}

// TestWriterWatermarkOrdering: the watermark line persists after the
// tail line, never before (the torn-record defence's ordering).
func TestWriterWatermarkOrdering(t *testing.T) {
	w, m := newWriter()
	w.append(rec(0x1000, 8, 5))
	// Observe persist order through the machine's crash hook.
	var order []mem.Addr
	m.OnL3Writeback = nil
	// Wrap: count persists by address via a tiny shim — read the log
	// area between operations instead (simpler): before sync, the
	// watermark must still be at RecordsStart.
	raw := make([]byte, 64)
	m.PM.Read(m.Layout.LogBase, raw)
	if logfmt.DecodeHeader(raw).Watermark != logfmt.RecordsStart {
		t.Fatal("watermark advanced before sync")
	}
	w.sync()
	m.PM.Read(m.Layout.LogBase, raw)
	if logfmt.DecodeHeader(raw).Watermark != w.nextOff {
		t.Fatal("watermark not advanced by sync")
	}
	_ = order
}

// TestWriterOverflowPanics: a transaction larger than the log area is
// rejected loudly.
func TestWriterOverflowPanics(t *testing.T) {
	w, _ := newWriter()
	defer func() {
		if recover() == nil {
			t.Error("log overflow not detected")
		}
	}()
	for i := 0; ; i++ {
		w.append(rec(mem.Addr(0x1000+i*64), 64, 1))
	}
}

// TestTieredSinkDiscardBeforeSpill: records of a line discarded at
// commit never reach PM, but records already spilled (line evicted) do.
func TestTieredSinkDiscardBeforeSpill(t *testing.T) {
	w, m := newWriter()
	s := newTieredSink(w, func(r logbuf.Record) logbuf.Record { return r })
	s.add(rec(0x1000, 8, 1))
	s.add(rec(0x2000, 8, 2))
	if n := s.discardLine(0x1000); n != 1 {
		t.Fatalf("discarded %d", n)
	}
	s.drain()
	got := parse(m)
	if len(got) != 1 || got[0].Addr != 0x2000 {
		t.Fatalf("unexpected durable records: %+v", got)
	}
}

// TestDirectSinkNothingBuffered: EDE's sink exposes no buffered state
// and cannot discard.
func TestDirectSinkNothingBuffered(t *testing.T) {
	w, m := newWriter()
	s := newDirectSink(w, func(r logbuf.Record) logbuf.Record { return r })
	s.add(rec(0x1000, 8, 1))
	if s.hasLine(0x1000) || len(s.buffered()) != 0 {
		t.Error("direct sink claims buffered state")
	}
	if s.discardLine(0x1000) != 0 {
		t.Error("direct sink discarded a record")
	}
	s.drain()
	if got := parse(m); len(got) != 1 {
		t.Fatalf("parsed %d", len(got))
	}
}
