package engine

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/profile"
)

// EpochGroup coordinates the epoch closes of a multi-core cluster's
// engines into one atomic group commit. Per-core group commit alone is
// unsound across cores: transactions on different cores exchange cache
// lines mid-window (a consumer reads a value its producer's epoch has
// not yet made durable), so per-core epochs must not become durable
// independently — a crash could commit the consumer's epoch while
// rolling back the producer's, leaving committed state built on
// phantom values. The group close makes every core's open epoch
// durable in one shot:
//
//  1. prepare: every engine drains + syncs its log stream and issues
//     the data persists that precede its commit point (all enqueue-
//     ordered; a crash here leaves every epoch torn);
//  2. commit point: ONE persist of the shared group descriptor line
//     records each core's (epoch, committed-boundary) pair — the
//     all-or-nothing durability edge of the whole group;
//  3. finish: every engine rewrites its stream header (reopening
//     around a transaction running through the close) and, in redo
//     mode, persists its logged epoch data.
//
// The group also owns the cluster-global transaction sequence that
// boundary records carry, giving recovery the exact global order in
// which interleaved cross-core records must be applied.
//
// The deterministic interleaver runs transactions one at a time, so at
// most one engine (the one whose operation triggered the close) can be
// mid-transaction during a group close; everything here runs on the
// engines' own simulated timelines.
type EpochGroup struct {
	engines  []*Engine
	descAddr mem.Addr
	vec      []logfmt.GroupEntry // volatile descriptor image, one per core
	seq      uint64              // cluster-global transaction sequence
	closing  bool                // re-entrancy guard (persists cannot nest a close)
}

// NewEpochGroup builds the group over the engines of one cluster (all
// configured with the same CommitWindow > 1) and attaches itself to
// each of them.
func NewEpochGroup(engines []*Engine) *EpochGroup {
	if len(engines) > logfmt.MaxGroupCores {
		panic(fmt.Sprintf("engine: group commit supports at most %d cores (descriptor is one line), got %d",
			logfmt.MaxGroupCores, len(engines)))
	}
	g := &EpochGroup{
		engines:  engines,
		descAddr: engines[0].m.Layout.GroupDesc(),
		vec:      make([]logfmt.GroupEntry, len(engines)),
	}
	for _, e := range engines {
		if !e.grouped() {
			panic("engine: epoch group requires CommitWindow > 1 on every engine")
		}
		e.group = g
	}
	return g
}

// nextSeq allocates the next cluster-global transaction sequence
// number. With one core the values coincide with the engine's local
// numbering.
func (g *EpochGroup) nextSeq() uint64 {
	g.seq++
	return g.seq
}

// activeLogged reports whether any engine's running transaction has
// logged the line — the redo close must keep such lines' volatile
// (in-flight) contents out of PM.
func (g *EpochGroup) activeLogged(la mem.Addr) bool {
	for _, e := range g.engines {
		if !e.cur.active {
			continue
		}
		if cls, ok := e.cur.writeLines[la]; ok && cls&wsLogged != 0 {
			return true
		}
	}
	return false
}

// close runs the atomic group close. trigger is the engine whose
// window filled (or was forced); the descriptor persist is charged to
// its core. Engines whose epochs hold no committed transactions are
// left alone — their previous descriptor entries stay valid, and an
// epoch holding only a running transaction's records needs no commit
// point.
func (g *EpochGroup) close(trigger *Engine) {
	if g.closing {
		return
	}
	g.closing = true
	defer func() { g.closing = false }()
	any := false
	for _, e := range g.engines {
		if e.epochOpen && e.epochTxns > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	// Every engine's records become durably visible before ANY engine
	// persists data: a committed line can carry words whose only undo
	// records sit in a peer's stream (the line migrated mid-window),
	// and persisting it ahead of the peer's sync would strand those
	// words if the crash fell in between.
	for _, e := range g.engines {
		if e.epochOpen && e.epochTxns > 0 {
			e.prepareSync()
		}
	}
	for _, e := range g.engines {
		if e.epochOpen && e.epochTxns > 0 {
			e.preparePersist()
		}
	}
	// Commit point: every prepared engine's (epoch, boundary) lands in
	// the descriptor with one line persist. The boundary excludes the
	// suffix of a transaction running through the close, which stays
	// torn until its own epoch closes.
	for i, e := range g.engines {
		if e.epochOpen && e.epochTxns > 0 {
			b := e.w.nextOff
			if e.cur.active {
				b = e.txnStartOff
			}
			g.vec[i] = logfmt.GroupEntry{Epoch: uint32(e.epoch), Boundary: uint32(b)}
		}
	}
	line := logfmt.EncodeGroupDesc(g.vec)
	prev := trigger.m.SetCause(profile.CauseCommitMarker)
	trigger.m.PersistData(g.descAddr, line[:])
	trigger.m.SetCause(prev)
	for _, e := range g.engines {
		if e.epochOpen && e.epochTxns > 0 {
			e.finishClose()
		}
	}
}
