// Package slpmt implements the transaction engine of the paper: hardware
// persistent-memory transactions with selective logging (storeT),
// fine-grain word-level logging through a tiered coalescing log buffer,
// and lazy persistency tracked by working-set signatures and circular
// 2-bit transaction IDs.
//
// The engine sits between the workload-facing API and the machine layer:
// workloads issue Begin/Load/Store/StoreT/Commit/Abort; the engine
// decides what to log, when to persist, and in which order, and drives
// the machine (caches + WPQ) accordingly. One Engine instance models the
// SLPMT hardware of one core; alternative hardware designs (the paper's
// FG baseline, ATOM, EDE) are the same engine under different Configs —
// see the schemes package for the named configurations of §VI-C.
package engine

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/isa"
)

// Granularity selects the logging granularity.
type Granularity uint8

const (
	// Word logs 8-byte words (fine-grain logging, §III-B).
	Word Granularity = iota
	// Line logs whole 64-byte cache lines (ATOM and the Figure 9
	// line-granularity SLPMT configuration).
	Line
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	if g == Word {
		return "word"
	}
	return "line"
}

// LogMode selects undo or redo logging (Figure 4 ordering).
type LogMode uint8

const (
	// Undo logs old values; log records must persist before their data
	// lines, and log-free lines may persist at any time.
	Undo LogMode = iota
	// Redo logs new values; log-free lines must persist before the log
	// commits, and logged data lines persist only after the commit
	// record.
	Redo
)

// String implements fmt.Stringer.
func (m LogMode) String() string {
	if m == Undo {
		return "undo"
	}
	return "redo"
}

// BufferPolicy selects the hardware path between log creation and PM.
type BufferPolicy uint8

const (
	// BufferTiered uses the four-tier coalescing log buffer (§III-B2) —
	// the FG baseline, SLPMT, and (degenerately, since its records are
	// always line-sized) ATOM.
	BufferTiered BufferPolicy = iota
	// BufferDirect flushes each record as it is produced, with only a
	// single staging slot for merging immediately adjacent records —
	// the EDE configuration, which "coalesces as much as possible" but
	// has no hardware log buffer.
	BufferDirect
)

// String implements fmt.Stringer.
func (p BufferPolicy) String() string {
	if p == BufferTiered {
		return "tiered"
	}
	return "direct"
}

// Config selects the hardware design the engine models.
type Config struct {
	// Name labels the scheme in reports.
	Name string
	// Caps selects which storeT semantics are honoured (Table I): the
	// FG baseline honours neither; SLPMT honours both.
	Caps isa.Caps
	// Granularity is the logging granularity.
	Granularity Granularity
	// Mode selects undo or redo logging.
	Mode LogMode
	// Buffer selects the log path.
	Buffer BufferPolicy
	// Speculative enables the §III-B1 optimization: on an L1 eviction,
	// create log records for the unlogged words of a partially logged
	// 32-byte group so that the folded L2 log bit is preserved.
	Speculative bool
	// ComputeCyclesPerOp adds a fixed compute cost per Load/Store,
	// modelling the non-memory work of the workload (the knob that
	// makes compute-heavy structures like kv-rtree show diluted
	// speedups, §VI-E).
	ComputeCyclesPerOp uint64
	// CommitWindow is the group-commit window W: commits accumulate in
	// an open epoch and the ordering persists (watermark sync, data
	// flush, commit marker) are issued once per W transactions instead
	// of per transaction. 0 or 1 selects the per-transaction protocol,
	// which is bit-exact with the pre-epoch engine.
	CommitWindow int
	// EpochCycleBudget bounds commit latency under group commit: an
	// open epoch is force-closed at the next commit once this many
	// cycles have elapsed since it opened, even if fewer than
	// CommitWindow transactions have committed. 0 disables the budget.
	EpochCycleBudget uint64
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.Granularity != Word && c.Granularity != Line {
		return fmt.Errorf("engine: invalid granularity %d", c.Granularity)
	}
	if c.Mode != Undo && c.Mode != Redo {
		return fmt.Errorf("engine: invalid log mode %d", c.Mode)
	}
	if c.Buffer != BufferTiered && c.Buffer != BufferDirect {
		return fmt.Errorf("engine: invalid buffer policy %d", c.Buffer)
	}
	if c.Speculative && c.Granularity != Word {
		return fmt.Errorf("engine: speculative logging requires word granularity")
	}
	if c.CommitWindow < 0 {
		return fmt.Errorf("engine: invalid commit window %d", c.CommitWindow)
	}
	if c.EpochCycleBudget != 0 && c.CommitWindow <= 1 {
		return fmt.Errorf("engine: epoch cycle budget requires a commit window above 1")
	}
	return nil
}

// String implements fmt.Stringer.
func (c Config) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("%s/%s/%s/caps=%s", c.Granularity, c.Mode, c.Buffer, c.Caps)
}

// Transaction-ID space: 2 bits per cache line (§III-C2).
const (
	// NumTxIDs is the number of concurrently trackable transactions.
	NumTxIDs = 4
	// NoTxID marks a cache line not owned by any tracked transaction.
	// Cache lines store IDs 0..NumTxIDs-1; the engine reserves the
	// value below for "no transaction" in its own bookkeeping and never
	// assigns it to a line... except that freshly fetched lines have
	// TxID 0, which collides with transaction ID 0. The engine
	// disambiguates by consulting its retained-transaction table: a
	// TxID only triggers lazy persistence if a retained transaction
	// currently owns it.
	NoTxID = 0xFF
)

// NumSignatures is the number of working-set signatures (one per
// transaction ID; 4 × 2048 bits = 1 KiB, §III-D).
const NumSignatures = NumTxIDs
