package engine

import (
	"encoding/binary"

	"github.com/persistmem/slpmt/internal/logbuf"
	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/trace"
)

// logWriter appends serialized records to the durable log area, packing
// them into cache-line-sized PM writes (the "pad" organization of
// §III-B2: variable-sized records, line-sized memory interface).
//
// Writes are line-granular: when records fill a 64-byte chunk the chunk
// is persisted. A record can therefore be torn across a crash — its
// address word persisted without its data — so the durable header
// carries a WATERMARK, advanced (in a separate, ordered write) only at
// sync points, and recovery parses records strictly below it. A sync is
// required before any dependent data line may persist; appending more
// records after a sync rewrites the partial tail line — honest write
// amplification.
type logWriter struct {
	m    *machine.Core
	base mem.Addr // log area base
	size uint64   // log area size

	seq       uint64 // owning transaction sequence (record tags)
	hdr       logfmt.Header
	buf       []byte // serialized bytes not yet aligned-flushed
	bufStart  uint64 // offset (from base) of buf[0]
	nextOff   uint64 // offset of the byte after the last appended record
	flushedTo uint64 // offset up to which lines have been persisted

	recordsPersisted uint64
	bytesPersisted   uint64
}

func newLogWriter(m *machine.Core) *logWriter {
	return &logWriter{
		m:    m,
		base: m.Layout.LogBase,
		size: m.Layout.LogSize,
	}
}

// reset starts a fresh record stream (transaction Begin).
func (w *logWriter) reset(seq uint64) {
	w.seq = seq
	w.buf = w.buf[:0]
	w.bufStart = logfmt.RecordsStart
	w.nextOff = logfmt.RecordsStart
	w.flushedTo = logfmt.RecordsStart
}

// writeHeader persists the log header line and remembers it so sync can
// re-issue it with an advanced watermark.
func (w *logWriter) writeHeader(h logfmt.Header) {
	w.hdr = h
	line := logfmt.EncodeHeader(h)
	w.m.PersistLogLine(w.base, line[:])
}

// append serializes one record into the stream and persists any
// completed lines.
func (w *logWriter) append(r logbuf.Record) {
	need := 8 + len(r.Data)
	if w.nextOff+uint64(need)+8 > w.size {
		panic("engine: log area overflow (transaction too large)")
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], logfmt.EncodeAddrWord(r.Addr, len(r.Data), logfmt.Tag(w.seq)))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, r.Data...)
	w.nextOff += uint64(need)
	w.recordsPersisted++
	w.bytesPersisted += uint64(need)
	w.m.Stats.LogRecordsPersisted++
	w.m.Stats.LogBytesPersisted += uint64(need)
	// The record has entered the durable log stream; its end offset lets
	// the persist-order sanitizer match it against later watermark syncs.
	w.m.Trace(trace.KLogPersist, r.Addr, w.nextOff)
	w.flushFull()
}

// flushFull persists every complete 64-byte chunk in buf.
func (w *logWriter) flushFull() {
	for len(w.buf) >= mem.LineSize {
		w.m.PersistLogLine(w.base+w.bufStart, w.buf[:mem.LineSize])
		w.buf = append(w.buf[:0], w.buf[mem.LineSize:]...)
		w.bufStart += mem.LineSize
		if w.bufStart > w.flushedTo {
			w.flushedTo = w.bufStart
		}
	}
}

// sync makes every appended record durably VISIBLE: the partial tail
// line is persisted, then the header's watermark advances to nextOff.
// The two writes are ordered (tail before watermark), so a crash
// between them leaves the old watermark — records beyond it are simply
// not yet visible, which is safe because their data lines persist only
// after sync returns. Subsequent appends continue in the same tail line
// (rewriting it on the next sync).
func (w *logWriter) sync() {
	if len(w.buf) > 0 {
		w.m.PersistLogLine(w.base+w.bufStart, w.buf)
	}
	if w.hdr.Watermark != w.nextOff {
		w.hdr.Watermark = w.nextOff
		line := logfmt.EncodeHeader(w.hdr)
		w.m.PersistLogLine(w.base, line[:])
	}
	// Records at offsets <= the watermark are now durably visible; data
	// lines depending on them may persist from here on.
	w.m.Trace(trace.KLogSync, w.base, w.hdr.Watermark)
}

// logSink is the hardware path from record creation to persistent
// memory. Implementations differ in their buffering/coalescing.
type logSink interface {
	// add accepts a newly created record. It may persist records.
	add(r logbuf.Record)
	// flushLine makes every record of the given cache line durable
	// (called before the line leaves the private caches).
	flushLine(line mem.Addr)
	// hasLine reports whether records for the line are still buffered.
	hasLine(line mem.Addr) bool
	// discardLine drops buffered records for the line (commit-time
	// treatment of lazily persistent lines). Returns count dropped.
	discardLine(line mem.Addr) int
	// drain persists every buffered record and syncs the stream.
	drain()
	// spill appends every buffered record to the stream without a
	// sync (no watermark advance, no ordering point). Group commit
	// spills at transaction boundaries so the epoch stream stays
	// partitioned by transaction: everything below the next
	// transaction's start offset belongs to earlier transactions.
	spill()
	// clear drops all buffered state without persisting (abort).
	clear()
	// buffered returns a snapshot of the not-yet-persisted records.
	buffered() []logbuf.Record
}

// refreshFn lets the redo engine refresh a record's payload to the
// latest volatile value at spill time (undo records keep their captured
// old values; see engine.refreshRecord).
type refreshFn func(r logbuf.Record) logbuf.Record

// tieredSink wraps the four-tier coalescing log buffer.
type tieredSink struct {
	buf     *logbuf.Buffer
	w       *logWriter
	refresh refreshFn
	dirty   bool // records appended since last sync
}

func newTieredSink(w *logWriter, refresh refreshFn) *tieredSink {
	s := &tieredSink{w: w, refresh: refresh}
	s.buf = logbuf.New(func(recs []logbuf.Record) {
		for _, r := range recs {
			s.w.append(s.refresh(r))
		}
		s.dirty = true
	})
	return s
}

func (s *tieredSink) add(r logbuf.Record)     { s.buf.Insert(r) }
func (s *tieredSink) hasLine(a mem.Addr) bool { return s.buf.HasLine(a) }

func (s *tieredSink) flushLine(a mem.Addr) {
	if s.buf.FlushLine(a) > 0 || s.dirty {
		s.w.sync()
		s.dirty = false
	}
}

func (s *tieredSink) discardLine(a mem.Addr) int { return s.buf.DiscardLine(a) }

func (s *tieredSink) drain() {
	s.buf.DrainAll()
	s.w.sync()
	s.dirty = false
}

func (s *tieredSink) spill() { s.buf.DrainAll() }

func (s *tieredSink) clear() { s.buf.Clear() }

func (s *tieredSink) buffered() []logbuf.Record { return s.buf.Records() }

// stats exposes the underlying buffer counters.
func (s *tieredSink) stats() logbuf.Stats { return s.buf.Stats() }

// directSink models EDE's log path: hardware logging without a
// coalescing log buffer. Records are appended to the durable log as
// they are produced (write-combining packs them into line-sized PM
// writes, as the cache hierarchy would), but — unlike the tiered
// buffer — adjacent word records are never merged into larger records,
// so every word pays its own 8-byte address header. This is exactly the
// gap the paper identifies: "Although EDE supports fine-grain logging,
// it loses opportunities for hardware log coalescing via a log buffer."
//
// Because records leave the core immediately, nothing is buffered:
// lazily persistent lines can never have their records discarded at
// commit, and flushLine only needs to sync the packing tail.
type directSink struct {
	w       *logWriter
	refresh refreshFn
	dirty   bool
}

func newDirectSink(w *logWriter, refresh refreshFn) *directSink {
	return &directSink{w: w, refresh: refresh}
}

func (s *directSink) add(r logbuf.Record) {
	s.w.append(s.refresh(r))
	s.dirty = true
}

func (s *directSink) flushLine(a mem.Addr) {
	if s.dirty {
		s.w.sync()
		s.dirty = false
	}
}

func (s *directSink) hasLine(a mem.Addr) bool { return false }

func (s *directSink) discardLine(a mem.Addr) int { return 0 }

func (s *directSink) drain() {
	s.w.sync()
	s.dirty = false
}

func (s *directSink) spill() {}

func (s *directSink) clear() { s.dirty = false }

func (s *directSink) buffered() []logbuf.Record { return nil }
