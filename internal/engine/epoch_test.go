package engine

import (
	"reflect"
	"testing"

	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
)

func windowCfg(w int) Config {
	c := slpmtCfg()
	c.CommitWindow = w
	return c
}

func readHeader(m *machine.Core) logfmt.Header {
	raw := make([]byte, 256)
	m.PM.Read(m.Layout.LogBase, raw)
	return logfmt.DecodeHeader(raw)
}

// TestEpochBatchesCloses: with W=4, eight committed transactions close
// exactly two epochs, and committed data stays volatile until its
// window's close.
func TestEpochBatchesCloses(t *testing.T) {
	e, m := newEng(windowCfg(4))
	base := m.Layout.HeapBase
	for i := 0; i < 3; i++ {
		e.Begin()
		e.StoreU64(base+mem.Addr(i)*mem.LineSize, uint64(i+1), isa.Store, isa.Plain)
		e.Commit()
	}
	if m.Stats.EpochCloses != 0 {
		t.Fatalf("epoch closed after 3/4 transactions (%d closes)", m.Stats.EpochCloses)
	}
	if m.PM.ReadU64(base) == 1 {
		t.Error("committed data durable before the epoch close")
	}
	e.Begin()
	e.StoreU64(base+3*mem.LineSize, 4, isa.Store, isa.Plain)
	e.Commit() // 4th commit fills the window
	if m.Stats.EpochCloses != 1 {
		t.Fatalf("window fill closed %d epochs, want 1", m.Stats.EpochCloses)
	}
	for i := 0; i < 4; i++ {
		if got := m.PM.ReadU64(base + mem.Addr(i)*mem.LineSize); got != uint64(i+1) {
			t.Errorf("line %d durable value %d, want %d", i, got, i+1)
		}
	}
	hdr := readHeader(m)
	if hdr.State != logfmt.StateCommitted {
		t.Errorf("header state %d, want committed", hdr.State)
	}
	if hdr.CommittedTo != hdr.Watermark || hdr.CommittedTo < logfmt.RecordsStart {
		t.Errorf("CommittedTo %d / Watermark %d: closed epoch must commit the whole stream", hdr.CommittedTo, hdr.Watermark)
	}
	if hdr.Epoch != 1 {
		t.Errorf("header epoch %d, want 1", hdr.Epoch)
	}
	for i := 4; i < 8; i++ {
		e.Begin()
		e.StoreU64(base+mem.Addr(i)*mem.LineSize, uint64(i+1), isa.Store, isa.Plain)
		e.Commit()
	}
	if m.Stats.EpochCloses != 2 {
		t.Errorf("8 transactions closed %d epochs, want 2", m.Stats.EpochCloses)
	}
	if hdr := readHeader(m); hdr.Epoch != 2 {
		t.Errorf("header epoch %d after second close, want 2", hdr.Epoch)
	}
}

// TestEpochBoundaryRecords: every grouped transaction opens with a
// boundary record carrying its sequence number.
func TestEpochBoundaryRecords(t *testing.T) {
	e, m := newEng(windowCfg(3))
	base := m.Layout.HeapBase
	for i := 0; i < 3; i++ {
		e.Begin()
		e.StoreU64(base+mem.Addr(i)*mem.LineSize, uint64(i+1), isa.Store, isa.Plain)
		e.Commit()
	}
	raw := make([]byte, m.Layout.LogSize)
	m.PM.Read(m.Layout.LogBase, raw)
	hdr := logfmt.DecodeHeader(raw)
	recs, err := logfmt.ParseRegion(raw, logfmt.RecordsStart, hdr.Watermark)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for _, r := range recs {
		if logfmt.IsBoundary(r) {
			seqs = append(seqs, logfmt.BoundarySeq(r))
		}
	}
	if len(seqs) != 3 {
		t.Fatalf("%d boundary records, want 3 (records: %d)", len(seqs), len(recs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Errorf("boundary sequences not consecutive: %v", seqs)
		}
	}
}

// TestEpochForcedCloseMidTxn: a forced close with a transaction in
// flight commits the window's prefix and reopens the stream around the
// running transaction under a fresh epoch number.
func TestEpochForcedCloseMidTxn(t *testing.T) {
	e, m := newEng(windowCfg(8))
	base := m.Layout.HeapBase
	e.Begin()
	e.StoreU64(base, 11, isa.Store, isa.Plain)
	e.Commit()
	e.Begin()
	e.StoreU64(base+mem.LineSize, 22, isa.Store, isa.Plain)
	e.FinishEpoch() // forced close, txn 2 still running
	if m.Stats.EpochCloses != 1 {
		t.Fatalf("forced close closed %d epochs, want 1", m.Stats.EpochCloses)
	}
	if got := m.PM.ReadU64(base); got != 11 {
		t.Errorf("committed prefix not durable after forced close (got %d)", got)
	}
	hdr := readHeader(m)
	if hdr.State != logfmt.StateActive {
		t.Errorf("header state %d, want active (reopened around running txn)", hdr.State)
	}
	if hdr.Epoch != 2 {
		t.Errorf("header epoch %d, want 2 after reopen", hdr.Epoch)
	}
	if hdr.CommittedTo >= hdr.Watermark {
		t.Errorf("CommittedTo %d >= Watermark %d: running txn's records must stay open", hdr.CommittedTo, hdr.Watermark)
	}
	e.Commit()
	e.FinishEpoch()
	if got := m.PM.ReadU64(base + mem.LineSize); got != 22 {
		t.Errorf("txn 2 not durable after its own close (got %d)", got)
	}
	if hdr := readHeader(m); hdr.State != logfmt.StateCommitted {
		t.Errorf("final header state %d, want committed", hdr.State)
	}
}

// TestEpochAbortMidWindow: aborting inside an open window reverts only
// the aborting transaction; the window's committed prefix survives to
// the close.
func TestEpochAbortMidWindow(t *testing.T) {
	for _, mode := range []LogMode{Undo, Redo} {
		cfg := windowCfg(4)
		cfg.Mode = mode
		e, m := newEng(cfg)
		base := m.Layout.HeapBase
		e.Begin()
		e.StoreU64(base, 11, isa.Store, isa.Plain)
		e.Commit()
		e.Begin()
		e.StoreU64(base, 99, isa.Store, isa.Plain)
		e.StoreU64(base+mem.LineSize, 99, isa.Store, isa.Plain)
		e.Abort()
		if got := e.LoadU64(base); got != 11 {
			t.Errorf("mode %v: abort left volatile value %d, want 11", mode, got)
		}
		e.FinishEpoch()
		if got := m.PM.ReadU64(base); got != 11 {
			t.Errorf("mode %v: durable value %d after close, want 11", mode, got)
		}
		if got := m.PM.ReadU64(base + mem.LineSize); got == 99 {
			t.Errorf("mode %v: aborted store leaked to PM", mode)
		}
	}
}

// TestEpochCycleBudget: the budget bounds commit-to-durability latency
// by force-closing at the first commit past the deadline.
func TestEpochCycleBudget(t *testing.T) {
	cfg := windowCfg(1 << 20) // window never fills on its own
	cfg.EpochCycleBudget = 1  // every commit is past the deadline
	e, m := newEng(cfg)
	base := m.Layout.HeapBase
	for i := 0; i < 3; i++ {
		e.Begin()
		e.StoreU64(base+mem.Addr(i)*mem.LineSize, uint64(i+1), isa.Store, isa.Plain)
		e.Commit()
	}
	if m.Stats.EpochCloses != 3 {
		t.Errorf("cycle budget closed %d epochs over 3 commits, want 3", m.Stats.EpochCloses)
	}
	if got := m.PM.ReadU64(base + 2*mem.LineSize); got != 3 {
		t.Errorf("budget-closed data not durable (got %d)", got)
	}
}

// TestEpochW1MatchesPerTxn: CommitWindow=1 must be indistinguishable
// from the per-transaction protocol — same cycles, same persist
// counts, same durable bytes.
func TestEpochW1MatchesPerTxn(t *testing.T) {
	run := func(cfg Config) (*Engine, *machine.Core) {
		e, m := newEng(cfg)
		base := m.Layout.HeapBase
		for i := 0; i < 6; i++ {
			e.Begin()
			e.StoreU64(base+mem.Addr(i%3)*mem.LineSize, uint64(i+1), isa.Store, isa.Plain)
			e.StoreU64(base+8*mem.LineSize, uint64(i), isa.StoreT, isa.LogFree)
			e.Commit()
		}
		return e, m
	}
	_, m0 := run(slpmtCfg())
	_, m1 := run(windowCfg(1))
	if m0.Clk != m1.Clk {
		t.Errorf("W=1 clock %d != per-txn clock %d", m1.Clk, m0.Clk)
	}
	if m0.PersistCount != m1.PersistCount {
		t.Errorf("W=1 persists %d != per-txn persists %d", m1.PersistCount, m0.PersistCount)
	}
	if !reflect.DeepEqual(m0.Stats, m1.Stats) {
		t.Errorf("W=1 stats differ:\n  per-txn: %+v\n  W=1:     %+v", m0.Stats, m1.Stats)
	}
	a, b := m0.Crash(), m1.Crash()
	if len(a.Data) != len(b.Data) {
		t.Fatal("image sizes differ")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("durable images differ at byte %#x", i)
		}
	}
}
