package txheap

import (
	"testing"

	"github.com/persistmem/slpmt/internal/mem"
)

// newSharded builds the per-core handles of a 4-core / 2-socket machine
// over a 64 MiB device: arenas are the first four 1 MiB stripes, the
// global fallback is everything past them.
func newSharded(t *testing.T) ([]*Heap, []mem.Layout) {
	t.Helper()
	layouts := mem.MultiLayoutSockets(64<<20, 4, 2)
	return NewSharded(nil, layouts, 1), layouts
}

func TestShardedArenaCarving(t *testing.T) {
	heaps, layouts := newSharded(t)
	if len(heaps) != len(layouts) {
		t.Fatalf("%d handles for %d layouts", len(heaps), len(layouts))
	}
	for i, h := range heaps {
		ar := h.Arenas()
		if len(ar) != 2 {
			t.Fatalf("core %d: %d spans, want arena+fallback", i, len(ar))
		}
		if ar[0].Addr != layouts[i].ArenaBase || ar[0].Size != layouts[i].ArenaSize {
			t.Errorf("core %d arena [%#x,%d), want [%#x,%d)",
				i, ar[0].Addr, ar[0].Size, layouts[i].ArenaBase, layouts[i].ArenaSize)
		}
		// The fallback starts where the last arena ends and runs to the
		// end of the heap — shared by every handle.
		last := layouts[len(layouts)-1]
		wantBase := last.ArenaBase + last.ArenaSize
		wantEnd := layouts[0].HeapBase + layouts[0].HeapSize
		if ar[1].Addr != wantBase || ar[1].End() != wantEnd {
			t.Errorf("core %d fallback [%#x,%#x), want [%#x,%#x)",
				i, ar[1].Addr, ar[1].End(), wantBase, wantEnd)
		}
	}
	// Ordinary allocations land in the allocating core's own arena — on
	// its home socket under the stripe interleave.
	for i, h := range heaps {
		a := h.Alloc(64)
		if a < layouts[i].ArenaBase || a >= layouts[i].ArenaBase+layouts[i].ArenaSize {
			t.Errorf("core %d alloc %#x outside its arena", i, a)
		}
		if got, want := layouts[i].SocketOf(a), i%2; got != want {
			t.Errorf("core %d alloc on socket %d, want home socket %d", i, got, want)
		}
	}
}

func TestShardedLargeAllocGoesToFallback(t *testing.T) {
	heaps, _ := newSharded(t)
	h := heaps[0]
	fb := h.Arenas()[1]
	a := h.Alloc(LargeAllocBytes)
	if a < fb.Addr || a >= fb.End() {
		t.Errorf("large alloc %#x not in fallback [%#x,%#x)", a, fb.Addr, fb.End())
	}
	// Just under the threshold stays arena-local.
	b := h.Alloc(LargeAllocBytes - 8)
	ar := h.Arenas()[0]
	if b < ar.Addr || b >= ar.End() {
		t.Errorf("sub-threshold alloc %#x not in arena [%#x,%#x)", b, ar.Addr, ar.End())
	}
}

func TestShardedBurstSpillsToFallback(t *testing.T) {
	heaps, _ := newSharded(t)
	h := heaps[0]
	ar, fb := h.Arenas()[0], h.Arenas()[1]
	h.BeginTx()
	// Fill the per-transaction budget with small arena-local allocations.
	var allocated uint64
	for allocated < BurstSpillBytes {
		a := h.Alloc(512)
		if a < ar.Addr || a >= ar.End() {
			t.Fatalf("pre-budget alloc %#x left the arena", a)
		}
		allocated += 512
	}
	// The next allocation of the same transaction spills.
	sp := h.Alloc(512)
	if sp < fb.Addr || sp >= fb.End() {
		t.Errorf("post-budget alloc %#x not in fallback", sp)
	}
	h.CommitTx()
	// A fresh transaction is arena-local again.
	h.BeginTx()
	a := h.Alloc(512)
	if a < ar.Addr || a >= ar.End() {
		t.Errorf("next-transaction alloc %#x not back in the arena", a)
	}
	h.CommitTx()
}

func TestShardedCrossHandleFree(t *testing.T) {
	heaps, _ := newSharded(t)
	a := heaps[0].Alloc(64)
	// A different handle frees it: the extent routes to core 0's arena
	// span, and core 0 reuses the space.
	heaps[3].Free(a)
	if heaps[0].SizeOf(a) != 0 {
		t.Fatal("cross-handle free not visible through the owner")
	}
	b := heaps[0].Alloc(64)
	if b != a {
		t.Errorf("freed arena block not reused: got %#x, want %#x", b, a)
	}
}

func TestShardedStatsMachineWideLiveBytes(t *testing.T) {
	heaps, _ := newSharded(t)
	heaps[0].Alloc(64)
	heaps[1].Alloc(128)
	_, _, _, live := heaps[2].Stats() // a handle that allocated nothing
	if live != 64+128 {
		t.Errorf("live bytes = %d, want machine-wide 192", live)
	}
}

func TestShardedCheckTiling(t *testing.T) {
	heaps, _ := newSharded(t)
	// Mixed traffic: arena allocations, a large fallback allocation,
	// frees creating holes.
	a := heaps[0].Alloc(64)
	heaps[0].Alloc(32)
	heaps[1].Alloc(4096)
	heaps[0].Free(a)
	for _, h := range heaps {
		if err := h.Check(); err != nil {
			t.Fatalf("Check on consistent heap: %v", err)
		}
	}
	// Corrupt one span: drop a live block without freeing it. Check must
	// report the unaccounted gap.
	s := heaps[0].spanOf(heaps[0].Alloc(64))
	for addr := range s.allocated {
		delete(s.allocated, addr)
		break
	}
	if err := heaps[2].Check(); err == nil {
		t.Error("Check missed an unaccounted gap")
	}
}

func TestRebuildShardedReconciles(t *testing.T) {
	heaps, _ := newSharded(t)
	a := heaps[0].Alloc(64)
	leak := heaps[1].Alloc(96) // becomes unreachable (crashed mid-transaction)
	c := heaps[1].Alloc(128)
	d := heaps[2].Alloc(LargeAllocBytes) // lives in the fallback span
	heaps[3].BeginTx()                   // a handle crashed inside a transaction
	heaps[3].Alloc(32)

	rep := RebuildSharded(heaps, []Extent{{a, 64}, {c, 128}, {d, LargeAllocBytes}})
	if rep.ReachableBlocks != 3 {
		t.Errorf("reachable blocks = %d, want 3", rep.ReachableBlocks)
	}
	// The leaked block and the in-transaction allocation both return to
	// free space; every span tiles exactly afterwards.
	if rep.ReclaimedGaps == 0 || rep.ReclaimedBytes < 96 {
		t.Errorf("leak not reclaimed: %+v", rep)
	}
	for i, h := range heaps {
		if err := h.Check(); err != nil {
			t.Errorf("core %d after rebuild: %v", i, err)
		}
	}
	// Handle 3's transaction bookkeeping was reset — a new transaction
	// may begin without a nested-BeginTx panic.
	heaps[3].BeginTx()
	heaps[3].CommitTx()
	// The reclaimed gap in core 1's arena is allocatable again.
	if got := heaps[1].Alloc(96); got != leak {
		t.Errorf("reclaimed gap not reused: got %#x, want %#x", got, leak)
	}
}

func TestNewShardedRequiresArenas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSharded on a single-socket layout should panic")
		}
	}()
	NewSharded(nil, mem.MultiLayout(64<<20, 2), 1)
}
