package txheap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/persistmem/slpmt/internal/mem"
)

func newHeap() *Heap {
	return New(nil, mem.DefaultLayout(16<<20), 1)
}

func TestAllocAlignsAndSeparates(t *testing.T) {
	h := newHeap()
	a := h.Alloc(5)
	b := h.Alloc(24)
	if !mem.AlignedTo(a, 8) || !mem.AlignedTo(b, 8) {
		t.Error("allocations not word aligned")
	}
	if b < a+8 {
		t.Error("allocations overlap")
	}
	if h.SizeOf(a) != 8 || h.SizeOf(b) != 24 {
		t.Errorf("sizes: %d, %d", h.SizeOf(a), h.SizeOf(b))
	}
}

func TestFreeReuseAndCoalesce(t *testing.T) {
	h := newHeap()
	a := h.Alloc(32)
	b := h.Alloc(32)
	c := h.Alloc(32)
	_ = c
	h.Free(a)
	h.Free(b) // coalesces with a: one 64-byte extent
	d := h.Alloc(64)
	if d != a {
		t.Errorf("coalesced region not reused: got %#x, want %#x", d, a)
	}
}

func TestFirstFitSplits(t *testing.T) {
	h := newHeap()
	a := h.Alloc(64)
	h.Alloc(8) // barrier so the free extent is isolated
	h.Free(a)
	b := h.Alloc(16)
	if b != a {
		t.Error("first fit ignored the free extent")
	}
	c := h.Alloc(48)
	if c != a+16 {
		t.Errorf("split remainder not used: got %#x, want %#x", c, a+16)
	}
}

func TestFreeUnknownPanics(t *testing.T) {
	h := newHeap()
	defer func() {
		if recover() == nil {
			t.Error("free of unknown address should panic")
		}
	}()
	h.Free(0x5000)
}

// TestQuarantine: memory freed inside a transaction is not handed back
// to the same transaction (the selective-logging soundness rule).
func TestQuarantine(t *testing.T) {
	h := newHeap()
	a := h.Alloc(64)
	h.BeginTx()
	h.Free(a)
	b := h.Alloc(64)
	if b == a {
		t.Fatal("freed block reused within the freeing transaction")
	}
	h.CommitTx()
	c := h.Alloc(64)
	if c != a {
		t.Errorf("freed block not reused after commit: got %#x, want %#x", c, a)
	}
}

func TestAbortRollsBack(t *testing.T) {
	h := newHeap()
	pre := h.Alloc(16)
	h.BeginTx()
	inTx := h.Alloc(16)
	h.Free(pre)
	if !h.InTxAlloc(inTx) || h.InTxAlloc(pre) {
		t.Error("InTxAlloc misclassifies")
	}
	if !h.InTxFree(pre) {
		t.Error("InTxFree misclassifies")
	}
	h.AbortTx()
	if h.SizeOf(pre) != 16 {
		t.Error("abort did not reinstate the freed block")
	}
	if h.SizeOf(inTx) != 0 {
		t.Error("abort did not release the transaction's allocation")
	}
	// The aborted allocation's space is reusable.
	again := h.Alloc(16)
	if again != inTx {
		t.Errorf("aborted allocation not recycled: got %#x, want %#x", again, inTx)
	}
}

func TestRebuild(t *testing.T) {
	h := newHeap()
	a := h.Alloc(64)
	b := h.Alloc(32)
	c := h.Alloc(128)
	_ = b // b becomes unreachable (leaked by a crashed transaction)
	rep := h.Rebuild([]Extent{{a, 64}, {c, 128}})
	if rep.ReachableBlocks != 2 || rep.ReachableBytes != 192 {
		t.Errorf("report: %+v", rep)
	}
	if rep.ReclaimedGaps != 1 || rep.ReclaimedBytes != 32 {
		t.Errorf("leak not reclaimed: %+v", rep)
	}
	// The reclaimed gap is allocatable again.
	d := h.Alloc(32)
	if d != b {
		t.Errorf("reclaimed gap not reused: got %#x, want %#x", d, b)
	}
}

func TestRebuildOverlapPanics(t *testing.T) {
	h := newHeap()
	a := h.Alloc(64)
	defer func() {
		if recover() == nil {
			t.Error("overlapping extents should panic")
		}
	}()
	h.Rebuild([]Extent{{a, 64}, {a + 32, 64}})
}

// TestAllocFreeProperty: under random alloc/free sequences, live blocks
// never overlap each other or the free list.
func TestAllocFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHeap()
		var live []mem.Addr
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				h.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			} else {
				live = append(live, h.Alloc(uint64(rng.Intn(200)+1)))
			}
		}
		// Verify no two live blocks overlap.
		ext := h.Live()
		for i := 1; i < len(ext); i++ {
			if ext[i-1].End() > ext[i].Addr {
				return false
			}
		}
		// Every Live extent matches a tracked address.
		if len(ext) != len(live) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	h := newHeap()
	a := h.Alloc(100) // rounds to 104
	h.Free(a)
	allocs, frees, bytes, liveB := h.Stats()
	if allocs != 1 || frees != 1 || bytes != 104 || liveB != 0 {
		t.Errorf("stats: %d %d %d %d", allocs, frees, bytes, liveB)
	}
}

func TestOutOfMemoryPanics(t *testing.T) {
	h := New(nil, mem.Layout{HeapBase: 64, HeapSize: 128}, 1)
	h.Alloc(128)
	defer func() {
		if recover() == nil {
			t.Error("exhausted heap should panic")
		}
	}()
	h.Alloc(8)
}
