// Package txheap is the persistent-heap allocator the workloads allocate
// their durable objects from.
//
// Following the paper's programming model (§IV-B, Pattern 1), allocator
// METADATA is volatile: like the STAMP ports' malloc, the free lists and
// bump pointer live outside persistent memory and are rebuilt after a
// crash by a reachability scan from the application's roots. A crash in
// the middle of a transaction can therefore leak objects that were
// allocated but never linked into the structure — exactly the leak the
// paper's recovery reclaims "using a garbage collector or a persistent
// inspector from PMDK". The recovery package implements that collector
// (mark from roots, rebuild the heap).
//
// Two rules keep selective logging sound:
//
//   - Objects freed inside a transaction are quarantined until the
//     transaction commits; the allocator never hands memory freed by the
//     current transaction back to it. (Reuse within the freeing
//     transaction would let log-free scribbles reach PM over data that
//     an undo-recovery could resurrect.)
//   - On abort, the transaction's allocations are returned to the free
//     list and its frees are cancelled.
//
// The allocator is first-fit over a sorted, coalescing free-extent list,
// with a bump pointer for virgin space.
//
// Space management is factored into spans — contiguous regions each
// with their own free list and bump pointer. The classic shared heap
// (New) is one span over the whole heap region. On a multi-socket
// topology (NewSharded) every core gets its own Heap handle whose
// allocation order is [local arena span, shared global fallback span]:
// the arena is a socket-local stripe of the heap (mem.Layout.ArenaBase),
// so allocation metadata stops being a cross-core serialization point
// and fresh objects land on the allocating core's home socket. Frees
// and rebuilds route by address to the owning span, whichever handle
// performs them.
package txheap

import (
	"fmt"
	"sort"

	"github.com/persistmem/slpmt/internal/mem"
)

// Extent is a [Addr, Addr+Size) byte range in the heap.
type Extent struct {
	Addr mem.Addr
	Size uint64
}

// End returns the first address past the extent.
func (e Extent) End() mem.Addr { return e.Addr + e.Size }

// Ticker is the clock surface the heap charges allocation costs to
// (satisfied by *machine.Machine and *machine.Core).
type Ticker interface {
	Tick(cycles uint64)
}

// arenaTicker is the optional charging surface of sharded heaps: when
// the Ticker also implements it, arena-allocator cycles are charged
// through TickArena (profile.CauseAllocArena) instead of plain compute.
type arenaTicker interface {
	TickArena(cycles uint64)
}

// DefaultAllocCycles is the modelled CPU cost of one allocator
// operation.
const DefaultAllocCycles = 40

// LargeAllocBytes is the sharded-heap threshold above which an
// allocation goes to the shared global fallback span instead of the
// local arena. The fallback region is line-interleaved across sockets
// (mem.Layout.SocketOf), so a large shared object — a bucket array, a
// setup-built spine — spreads its persist traffic over every device
// rather than camping on the allocating core's socket. Classic
// (non-sharded) heaps ignore the threshold.
const LargeAllocBytes = 2048

// BurstSpillBytes is the sharded-heap per-transaction allocation budget
// a local arena serves before the transaction's remaining allocations
// spill to the interleaved fallback span. A transaction allocating far
// more than a typical operation (a rehash copying every node, a bulk
// load) is reorganizing shared state, and packing that burst into one
// socket's arena would serialize the whole structure's future persist
// traffic behind one write queue — the interleave-on-bulk policy of
// NUMA allocators. Ordinary transactions never reach the budget and
// stay arena-local.
const BurstSpillBytes = 8 << 10

// span is one contiguous space-managed region: a sorted coalescing
// free-extent list plus a bump pointer for virgin space. Sharded heaps
// share span pointers across handles; the interleaved scheduler runs
// one core at a time, so no locking is needed (mutex-free by design).
type span struct {
	base      mem.Addr
	limit     mem.Addr
	bump      mem.Addr
	free      []Extent            // sorted by Addr, non-adjacent
	allocated map[mem.Addr]uint64 // live blocks: addr -> size
	liveBytes uint64
}

func newSpan(base mem.Addr, size uint64) *span {
	return &span{
		base:      base,
		limit:     base + mem.Addr(size),
		bump:      base,
		allocated: make(map[mem.Addr]uint64),
	}
}

// contains reports whether addr lies inside the span's region.
func (s *span) contains(addr mem.Addr) bool { return addr >= s.base && addr < s.limit }

// alloc takes size bytes from the span: first-fit over the free list,
// then the bump pointer. Returns false when the span is exhausted.
func (s *span) alloc(size uint64) (mem.Addr, bool) {
	if addr, ok := s.allocFromFree(size); ok {
		s.allocated[addr] = size
		s.liveBytes += size
		return addr, true
	}
	if s.bump+mem.Addr(size) > s.limit {
		return 0, false
	}
	addr := s.bump
	s.bump += mem.Addr(size)
	s.allocated[addr] = size
	s.liveBytes += size
	return addr, true
}

// allocFromFree takes a first-fit extent from the free list, splitting.
func (s *span) allocFromFree(size uint64) (mem.Addr, bool) {
	for i := range s.free {
		if s.free[i].Size >= size {
			addr := s.free[i].Addr
			if s.free[i].Size == size {
				s.free = append(s.free[:i], s.free[i+1:]...)
			} else {
				s.free[i].Addr += mem.Addr(size)
				s.free[i].Size -= size
			}
			return addr, true
		}
	}
	return 0, false
}

// insertFree adds an extent to the sorted free list, coalescing with
// neighbours.
func (s *span) insertFree(e Extent) {
	i := sort.Search(len(s.free), func(i int) bool { return s.free[i].Addr >= e.Addr })
	s.free = append(s.free, Extent{})
	copy(s.free[i+1:], s.free[i:])
	s.free[i] = e
	// Coalesce with successor.
	if i+1 < len(s.free) && s.free[i].End() == s.free[i+1].Addr {
		s.free[i].Size += s.free[i+1].Size
		s.free = append(s.free[:i+1], s.free[i+2:]...)
	}
	// Coalesce with predecessor.
	if i > 0 && s.free[i-1].End() == s.free[i].Addr {
		s.free[i-1].Size += s.free[i].Size
		s.free = append(s.free[:i], s.free[i+1:]...)
	}
}

// rebuild reconstructs the span from its (sorted) reachable extents:
// reachable blocks become the live set, every gap between them becomes
// free space, and the bump pointer retreats to the last reachable byte
// — trailing allocations a crashed transaction leaked return to virgin
// space (counted as reclaimed when rebuilding a live handle).
func (s *span) rebuild(sorted []Extent, rep *RebuildReport) {
	s.allocated = make(map[mem.Addr]uint64, len(sorted))
	s.free = s.free[:0]
	s.liveBytes = 0
	cursor := s.base
	for _, e := range sorted {
		if e.Addr < cursor {
			panic(fmt.Sprintf("txheap: overlapping reachable extents at %#x", e.Addr))
		}
		if gap := uint64(e.Addr - cursor); gap > 0 {
			s.insertFree(Extent{cursor, gap})
			rep.ReclaimedGaps++
			rep.ReclaimedBytes += gap
		}
		s.allocated[e.Addr] = e.Size
		s.liveBytes += e.Size
		rep.ReachableBlocks++
		rep.ReachableBytes += e.Size
		cursor = e.End()
	}
	if cursor < s.bump {
		rep.ReclaimedGaps++
		rep.ReclaimedBytes += uint64(s.bump - cursor)
	}
	s.bump = cursor
}

// extIndex is the lazily sorted lookup cache behind InTxAlloc/InTxFree:
// the per-transaction extent lists are append-only between resets, so
// the cache sorts once per batch of lookups instead of scanning
// linearly on every store (a hot path of the engine's Pattern 1
// analysis). The backing buffer is reused across transactions.
type extIndex struct {
	sorted []Extent
	clean  bool
}

func (ix *extIndex) invalidate() { ix.clean = false }

// extIndexLinearMax is the list length below which a plain linear scan
// beats maintaining the sorted cache.
const extIndexLinearMax = 8

// lookup reports whether addr lies inside any extent of ext.
func (ix *extIndex) lookup(ext []Extent, addr mem.Addr) bool {
	if len(ext) <= extIndexLinearMax {
		for _, e := range ext {
			if addr >= e.Addr && addr < e.End() {
				return true
			}
		}
		return false
	}
	if !ix.clean {
		ix.sorted = append(ix.sorted[:0], ext...)
		sort.Slice(ix.sorted, func(i, j int) bool { return ix.sorted[i].Addr < ix.sorted[j].Addr })
		ix.clean = true
	}
	// First extent starting past addr; the candidate is its predecessor.
	i := sort.Search(len(ix.sorted), func(i int) bool { return ix.sorted[i].Addr > addr })
	if i == 0 {
		return false
	}
	e := ix.sorted[i-1]
	return addr < e.End()
}

// Heap is one allocation handle: transaction bookkeeping plus an
// ordered list of spans to allocate from. The classic shared heap has
// one handle with one span; a sharded heap has one handle per core,
// all sharing the same spans (each handle preferring its local arena).
// Not safe for concurrent use.
type Heap struct {
	clk         Ticker
	atick       arenaTicker // non-nil on sharded heaps whose clock supports arena charging
	spans       []*span     // allocation preference order
	all         []*span     // every span of the machine (free/rebuild routing)
	shared      *span       // sharded heaps: the global fallback, preferred for large allocations
	allocCycles uint64

	inTx         bool
	txAllocs     []Extent // allocations made by the current transaction
	txFrees      []Extent // frees made by the current transaction
	txBytes      uint64   // bytes allocated by the current transaction (burst detection)
	txAllocIdx   extIndex // sorted lookup cache over txAllocs
	txFreeIdx    extIndex // sorted lookup cache over txFrees
	epochHold    bool     // extend the free quarantine to the epoch close
	epochFrees   []Extent // committed frees awaiting their epoch's durability
	totalAllocs  uint64
	totalFrees   uint64
	totalBytes   uint64
	rebuiltGaps  uint64
	rebuiltBytes uint64
}

// New creates a heap over [layout.HeapBase, HeapBase+HeapSize). clk may
// be nil (no timing charged).
func New(clk Ticker, layout mem.Layout, allocCycles uint64) *Heap {
	if allocCycles == 0 {
		allocCycles = DefaultAllocCycles
	}
	s := newSpan(layout.HeapBase, layout.HeapSize)
	return &Heap{
		clk:         clk,
		spans:       []*span{s},
		all:         []*span{s},
		allocCycles: allocCycles,
	}
}

// NewSharded creates the per-core heap handles of a multi-socket
// machine. Core i's handle allocates from its local arena span
// (layouts[i].ArenaBase, a stripe on the core's home socket) first and
// falls back to the shared global span — the stripes past the last
// core's arena. All handles share the spans: frees and rebuilds route
// by address to the owning span regardless of which handle performs
// them. clks[i] (may be nil) is charged core i's allocator cycles,
// through TickArena when supported (profile.CauseAllocArena).
func NewSharded(clks []Ticker, layouts []mem.Layout, allocCycles uint64) []*Heap {
	if allocCycles == 0 {
		allocCycles = DefaultAllocCycles
	}
	if len(layouts) == 0 {
		panic("txheap: NewSharded with no layouts")
	}
	l0 := layouts[0]
	if l0.ArenaSize == 0 {
		panic("txheap: NewSharded needs a multi-socket layout (no arenas carved)")
	}
	cores := len(layouts)
	all := make([]*span, 0, cores+1)
	for i := 0; i < cores; i++ {
		all = append(all, newSpan(layouts[i].ArenaBase, layouts[i].ArenaSize))
	}
	// Global fallback: everything past the last arena, shared by every
	// handle. Mutex-free like the arenas — the deterministic interleaver
	// runs one core at a time.
	fbBase := layouts[cores-1].ArenaBase + mem.Addr(layouts[cores-1].ArenaSize)
	fbEnd := l0.HeapBase + mem.Addr(l0.HeapSize)
	if fbBase >= fbEnd {
		panic("txheap: no room for the global fallback span")
	}
	fallback := newSpan(fbBase, uint64(fbEnd-fbBase))
	all = append(all, fallback)

	heaps := make([]*Heap, cores)
	for i := 0; i < cores; i++ {
		h := &Heap{
			spans:       []*span{all[i], fallback},
			all:         all,
			shared:      fallback,
			allocCycles: allocCycles,
		}
		if i < len(clks) && clks[i] != nil {
			h.clk = clks[i]
			if at, ok := clks[i].(arenaTicker); ok {
				h.atick = at
			}
		}
		heaps[i] = h
	}
	return heaps
}

func (h *Heap) tick() {
	if h.atick != nil {
		h.atick.TickArena(h.allocCycles)
		return
	}
	if h.clk != nil {
		h.clk.Tick(h.allocCycles)
	}
}

// spanOf returns the span containing addr, or nil. The span count is
// cores+1 at most, so a linear scan is fine.
func (h *Heap) spanOf(addr mem.Addr) *span {
	for _, s := range h.all {
		if s.contains(addr) {
			return s
		}
	}
	return nil
}

// BeginTx marks the start of a transaction (called by the ptx facade).
func (h *Heap) BeginTx() {
	if h.inTx {
		panic("txheap: nested BeginTx")
	}
	h.inTx = true
	h.txAllocs = h.txAllocs[:0]
	h.txFrees = h.txFrees[:0]
	h.txBytes = 0
	h.txAllocIdx.invalidate()
	h.txFreeIdx.invalidate()
}

// CommitTx releases quarantined frees to the free list — or, under
// the epoch quarantine, parks them until the epoch's commit point.
func (h *Heap) CommitTx() {
	if !h.inTx {
		panic("txheap: CommitTx outside transaction")
	}
	if h.epochHold {
		h.epochFrees = append(h.epochFrees, h.txFrees...)
	} else {
		for _, e := range h.txFrees {
			h.insertFree(e)
		}
	}
	h.inTx = false
	h.txAllocs = h.txAllocs[:0]
	h.txFrees = h.txFrees[:0]
	h.txBytes = 0
	h.txAllocIdx.invalidate()
	h.txFreeIdx.invalidate()
}

// EpochQuarantine extends the commit-time free quarantine to the
// group-commit epoch close. Under a commit window a transaction's
// commit is volatile until its epoch closes; releasing its frees at
// commit would let a later transaction of the same window reuse the
// memory and scribble it with log-free stores — stores no undo record
// can revert, over blocks the durable (pre-epoch) state still reaches.
// Parked frees return to the free list via ReleaseEpochFrees.
func (h *Heap) EpochQuarantine(on bool) { h.epochHold = on }

// ReleaseEpochFrees returns every epoch-parked extent to the free
// list. Called when an epoch's commit point is durable (its frees can
// no longer be rolled back).
func (h *Heap) ReleaseEpochFrees() {
	for _, e := range h.epochFrees {
		h.insertFree(e)
	}
	h.epochFrees = h.epochFrees[:0]
}

// AbortTx rolls the allocator back: the transaction's allocations return
// to the free list and its frees are reinstated as live.
func (h *Heap) AbortTx() {
	if !h.inTx {
		panic("txheap: AbortTx outside transaction")
	}
	for _, e := range h.txAllocs {
		s := h.spanOf(e.Addr)
		delete(s.allocated, e.Addr)
		s.liveBytes -= e.Size
		s.insertFree(e)
	}
	for _, e := range h.txFrees {
		s := h.spanOf(e.Addr)
		s.allocated[e.Addr] = e.Size
		s.liveBytes += e.Size
	}
	h.inTx = false
	h.txAllocs = h.txAllocs[:0]
	h.txFrees = h.txFrees[:0]
	h.txBytes = 0
	h.txAllocIdx.invalidate()
	h.txFreeIdx.invalidate()
}

// Alloc returns the address of a fresh block of at least size bytes
// (rounded up to a word multiple), taken from the first span in the
// handle's preference order with room (local arena before the global
// fallback on sharded heaps; allocations of LargeAllocBytes or more go
// to the fallback first, whose lines interleave across sockets). Panics
// when every span is exhausted — the simulated workloads size the heap
// generously.
func (h *Heap) Alloc(size uint64) mem.Addr {
	if size == 0 {
		size = mem.WordSize
	}
	size = uint64(mem.AlignUp(mem.Addr(size), mem.WordSize))
	h.tick()

	var addr mem.Addr
	ok := false
	if h.shared != nil && (size >= LargeAllocBytes || h.txBytes >= BurstSpillBytes) {
		addr, ok = h.shared.alloc(size)
	}
	if !ok {
		for _, s := range h.spans {
			if addr, ok = s.alloc(size); ok {
				break
			}
		}
	}
	if !ok {
		last := h.spans[len(h.spans)-1]
		panic(fmt.Sprintf("txheap: out of memory (want %d bytes, bump %#x, limit %#x)", size, last.bump, last.limit))
	}
	h.totalAllocs++
	h.totalBytes += size
	if h.inTx {
		h.txAllocs = append(h.txAllocs, Extent{addr, size})
		h.txAllocIdx.invalidate()
		h.txBytes += size
	}
	return addr
}

// Free releases the block at addr, routing to the span that owns the
// address. Inside a transaction the memory is quarantined until commit.
// Freeing an unknown address panics (catching workload bugs early).
func (h *Heap) Free(addr mem.Addr) {
	s := h.spanOf(addr)
	var size uint64
	ok := false
	if s != nil {
		size, ok = s.allocated[addr]
	}
	if !ok {
		panic(fmt.Sprintf("txheap: free of unallocated address %#x", addr))
	}
	h.tick()
	delete(s.allocated, addr)
	s.liveBytes -= size
	h.totalFrees++
	e := Extent{addr, size}
	if h.inTx {
		h.txFrees = append(h.txFrees, e)
		h.txFreeIdx.invalidate()
	} else {
		s.insertFree(e)
	}
}

// SizeOf returns the allocation size of a live block, or 0 if addr is
// not a live block start.
func (h *Heap) SizeOf(addr mem.Addr) uint64 {
	if s := h.spanOf(addr); s != nil {
		return s.allocated[addr]
	}
	return 0
}

// insertFree routes an extent to its owning span's free list.
func (h *Heap) insertFree(e Extent) { h.spanOf(e.Addr).insertFree(e) }

// TxAllocs returns the extents allocated by the current transaction —
// the provenance set the compiler's Pattern 1 analysis consumes: stores
// into these extents are log-free candidates. The returned slice
// aliases the heap's internal buffer and is valid only until the next
// allocator operation; callers must not retain or mutate it.
func (h *Heap) TxAllocs() []Extent { return h.txAllocs }

// InTxAlloc reports whether addr lies inside a block allocated by the
// current transaction. Long provenance sets are answered from a sorted
// index built once per lookup batch (the extents are disjoint).
func (h *Heap) InTxAlloc(addr mem.Addr) bool {
	return h.txAllocIdx.lookup(h.txAllocs, addr)
}

// InTxFree reports whether addr lies inside a block freed by the
// current transaction (stores to it need no persistence, §IV-B).
func (h *Heap) InTxFree(addr mem.Addr) bool {
	return h.txFreeIdx.lookup(h.txFrees, addr)
}

// Live returns the machine-wide live extents, sorted by address (all
// spans, whichever handle is asked).
func (h *Heap) Live() []Extent {
	n := 0
	for _, s := range h.all {
		n += len(s.allocated)
	}
	out := make([]Extent, 0, n)
	for _, s := range h.all {
		for a, sz := range s.allocated { //slpmt:determinism-ok: collected extents are sorted below
			out = append(out, Extent{a, sz})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats returns (allocs, frees, bytes allocated, live bytes). The
// operation totals are this handle's own; live bytes are machine-wide.
func (h *Heap) Stats() (allocs, frees, bytes, live uint64) {
	for _, s := range h.all {
		live += s.liveBytes
	}
	return h.totalAllocs, h.totalFrees, h.totalBytes, live
}

// Arenas returns the handle's span boundaries in allocation-preference
// order — the local arena first on sharded heaps, the global fallback
// (or the classic whole-heap span) last.
func (h *Heap) Arenas() []Extent {
	out := make([]Extent, 0, len(h.spans))
	for _, s := range h.spans {
		out = append(out, Extent{s.base, uint64(s.limit - s.base)})
	}
	return out
}

// RebuildReport describes a post-crash heap reconstruction.
type RebuildReport struct {
	// ReachableBlocks/Bytes is what the mark phase found live.
	ReachableBlocks int
	ReachableBytes  uint64
	// ReclaimedGaps/Bytes is allocated-looking space between reachable
	// blocks that returned to the free list (leaked allocations of the
	// interrupted transaction among it).
	ReclaimedGaps  int
	ReclaimedBytes uint64
}

// Rebuild reconstructs the allocator state after a crash from the set of
// reachable extents (the mark phase's output): each extent is routed to
// its owning span, reachable blocks become the live set, every gap
// below a span's high-water mark becomes free space. Panics if an
// extent lies outside every span (a corrupt reachability scan). Returns
// a report of what was reclaimed.
func (h *Heap) Rebuild(reachable []Extent) RebuildReport {
	sorted := make([]Extent, len(reachable))
	copy(sorted, reachable)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })

	var rep RebuildReport
	// The spans of a layout are disjoint and the extents sorted, so a
	// span's extents form a contiguous run.
	for _, s := range h.all {
		lo := sort.Search(len(sorted), func(i int) bool { return sorted[i].Addr >= s.base })
		hi := lo
		for hi < len(sorted) && sorted[hi].Addr < s.limit {
			hi++
		}
		s.rebuild(sorted[lo:hi], &rep)
	}
	if rep.ReachableBlocks != len(sorted) {
		for _, e := range sorted {
			if h.spanOf(e.Addr) == nil {
				panic(fmt.Sprintf("txheap: reachable extent %#x outside every span", e.Addr))
			}
		}
	}
	h.resetTx()
	h.rebuiltGaps += uint64(rep.ReclaimedGaps)
	h.rebuiltBytes += rep.ReclaimedBytes
	return rep
}

// resetTx clears the handle's transaction bookkeeping (post-rebuild).
func (h *Heap) resetTx() {
	h.inTx = false
	h.txAllocs = h.txAllocs[:0]
	h.txFrees = h.txFrees[:0]
	h.txBytes = 0
	h.txAllocIdx.invalidate()
	h.txFreeIdx.invalidate()
	h.epochFrees = h.epochFrees[:0]
}

// RebuildSharded reconstructs a sharded heap's spans from the
// reachability scan and clears every handle's transaction bookkeeping.
// The handles share their spans, so the space reconstruction itself is
// performed once.
func RebuildSharded(heaps []*Heap, reachable []Extent) RebuildReport {
	rep := heaps[0].Rebuild(reachable)
	for _, h := range heaps[1:] {
		h.resetTx()
	}
	return rep
}

// Check verifies the allocator's span invariant: within every span, the
// live blocks and the free extents tile [base, bump) exactly — no
// overlap, no unaccounted gap — and nothing lies beyond the bump
// pointer. Crash campaigns run it after a sharded rebuild to assert
// every arena reconciled its live extents with the durable prefix.
func (h *Heap) Check() error {
	for si, s := range h.all {
		ext := make([]Extent, 0, len(s.allocated)+len(s.free))
		for a, sz := range s.allocated { //slpmt:determinism-ok: collected extents are sorted below
			ext = append(ext, Extent{a, sz})
		}
		ext = append(ext, s.free...)
		sort.Slice(ext, func(i, j int) bool { return ext[i].Addr < ext[j].Addr })
		cursor := s.base
		for _, e := range ext {
			if e.Addr < cursor {
				return fmt.Errorf("txheap: span %d: extent %#x overlaps previous (cursor %#x)", si, e.Addr, cursor)
			}
			if e.Addr > cursor {
				return fmt.Errorf("txheap: span %d: unaccounted gap [%#x,%#x)", si, cursor, e.Addr)
			}
			cursor = e.End()
		}
		if cursor > s.bump {
			return fmt.Errorf("txheap: span %d: extents reach %#x beyond bump %#x", si, cursor, s.bump)
		}
		if cursor < s.bump {
			return fmt.Errorf("txheap: span %d: extents end at %#x short of bump %#x", si, cursor, s.bump)
		}
	}
	return nil
}
