// Package txheap is the persistent-heap allocator the workloads allocate
// their durable objects from.
//
// Following the paper's programming model (§IV-B, Pattern 1), allocator
// METADATA is volatile: like the STAMP ports' malloc, the free lists and
// bump pointer live outside persistent memory and are rebuilt after a
// crash by a reachability scan from the application's roots. A crash in
// the middle of a transaction can therefore leak objects that were
// allocated but never linked into the structure — exactly the leak the
// paper's recovery reclaims "using a garbage collector or a persistent
// inspector from PMDK". The recovery package implements that collector
// (mark from roots, rebuild the heap).
//
// Two rules keep selective logging sound:
//
//   - Objects freed inside a transaction are quarantined until the
//     transaction commits; the allocator never hands memory freed by the
//     current transaction back to it. (Reuse within the freeing
//     transaction would let log-free scribbles reach PM over data that
//     an undo-recovery could resurrect.)
//   - On abort, the transaction's allocations are returned to the free
//     list and its frees are cancelled.
//
// The allocator is first-fit over a sorted, coalescing free-extent list,
// with a bump pointer for virgin space.
package txheap

import (
	"fmt"
	"sort"

	"github.com/persistmem/slpmt/internal/mem"
)

// Extent is a [Addr, Addr+Size) byte range in the heap.
type Extent struct {
	Addr mem.Addr
	Size uint64
}

// End returns the first address past the extent.
func (e Extent) End() mem.Addr { return e.Addr + e.Size }

// Ticker is the clock surface the heap charges allocation costs to
// (satisfied by *machine.Machine).
type Ticker interface {
	Tick(cycles uint64)
}

// DefaultAllocCycles is the modelled CPU cost of one allocator
// operation.
const DefaultAllocCycles = 40

// Heap is the allocator. Not safe for concurrent use.
type Heap struct {
	clk         Ticker
	base        mem.Addr
	limit       mem.Addr
	bump        mem.Addr
	free        []Extent            // sorted by Addr, non-adjacent
	allocated   map[mem.Addr]uint64 // live blocks: addr -> size
	allocCycles uint64

	inTx         bool
	txAllocs     []Extent // allocations made by the current transaction
	txFrees      []Extent // frees made by the current transaction
	epochHold    bool     // extend the free quarantine to the epoch close
	epochFrees   []Extent // committed frees awaiting their epoch's durability
	totalAllocs  uint64
	totalFrees   uint64
	totalBytes   uint64
	liveBytes    uint64
	rebuiltGaps  uint64
	rebuiltBytes uint64
}

// New creates a heap over [layout.HeapBase, HeapBase+HeapSize). clk may
// be nil (no timing charged).
func New(clk Ticker, layout mem.Layout, allocCycles uint64) *Heap {
	if allocCycles == 0 {
		allocCycles = DefaultAllocCycles
	}
	return &Heap{
		clk:         clk,
		base:        layout.HeapBase,
		limit:       layout.HeapBase + layout.HeapSize,
		bump:        layout.HeapBase,
		allocated:   make(map[mem.Addr]uint64),
		allocCycles: allocCycles,
	}
}

func (h *Heap) tick() {
	if h.clk != nil {
		h.clk.Tick(h.allocCycles)
	}
}

// BeginTx marks the start of a transaction (called by the ptx facade).
func (h *Heap) BeginTx() {
	if h.inTx {
		panic("txheap: nested BeginTx")
	}
	h.inTx = true
	h.txAllocs = h.txAllocs[:0]
	h.txFrees = h.txFrees[:0]
}

// CommitTx releases quarantined frees to the free list — or, under
// the epoch quarantine, parks them until the epoch's commit point.
func (h *Heap) CommitTx() {
	if !h.inTx {
		panic("txheap: CommitTx outside transaction")
	}
	if h.epochHold {
		h.epochFrees = append(h.epochFrees, h.txFrees...)
	} else {
		for _, e := range h.txFrees {
			h.insertFree(e)
		}
	}
	h.inTx = false
	h.txAllocs = h.txAllocs[:0]
	h.txFrees = h.txFrees[:0]
}

// EpochQuarantine extends the commit-time free quarantine to the
// group-commit epoch close. Under a commit window a transaction's
// commit is volatile until its epoch closes; releasing its frees at
// commit would let a later transaction of the same window reuse the
// memory and scribble it with log-free stores — stores no undo record
// can revert, over blocks the durable (pre-epoch) state still reaches.
// Parked frees return to the free list via ReleaseEpochFrees.
func (h *Heap) EpochQuarantine(on bool) { h.epochHold = on }

// ReleaseEpochFrees returns every epoch-parked extent to the free
// list. Called when an epoch's commit point is durable (its frees can
// no longer be rolled back).
func (h *Heap) ReleaseEpochFrees() {
	for _, e := range h.epochFrees {
		h.insertFree(e)
	}
	h.epochFrees = h.epochFrees[:0]
}

// AbortTx rolls the allocator back: the transaction's allocations return
// to the free list and its frees are reinstated as live.
func (h *Heap) AbortTx() {
	if !h.inTx {
		panic("txheap: AbortTx outside transaction")
	}
	for _, e := range h.txAllocs {
		delete(h.allocated, e.Addr)
		h.liveBytes -= e.Size
		h.insertFree(e)
	}
	for _, e := range h.txFrees {
		h.allocated[e.Addr] = e.Size
		h.liveBytes += e.Size
	}
	h.inTx = false
	h.txAllocs = h.txAllocs[:0]
	h.txFrees = h.txFrees[:0]
}

// Alloc returns the address of a fresh block of at least size bytes
// (rounded up to a word multiple). Panics when the heap is exhausted —
// the simulated workloads size the heap generously.
func (h *Heap) Alloc(size uint64) mem.Addr {
	if size == 0 {
		size = mem.WordSize
	}
	size = uint64(mem.AlignUp(mem.Addr(size), mem.WordSize))
	h.tick()

	addr, ok := h.allocFromFree(size)
	if !ok {
		if h.bump+mem.Addr(size) > h.limit {
			panic(fmt.Sprintf("txheap: out of memory (want %d bytes, bump %#x, limit %#x)", size, h.bump, h.limit))
		}
		addr = h.bump
		h.bump += mem.Addr(size)
	}
	h.allocated[addr] = size
	h.liveBytes += size
	h.totalAllocs++
	h.totalBytes += size
	if h.inTx {
		h.txAllocs = append(h.txAllocs, Extent{addr, size})
	}
	return addr
}

// allocFromFree takes a first-fit extent from the free list, splitting.
func (h *Heap) allocFromFree(size uint64) (mem.Addr, bool) {
	for i := range h.free {
		if h.free[i].Size >= size {
			addr := h.free[i].Addr
			if h.free[i].Size == size {
				h.free = append(h.free[:i], h.free[i+1:]...)
			} else {
				h.free[i].Addr += mem.Addr(size)
				h.free[i].Size -= size
			}
			return addr, true
		}
	}
	return 0, false
}

// Free releases the block at addr. Inside a transaction the memory is
// quarantined until commit. Freeing an unknown address panics (catching
// workload bugs early).
func (h *Heap) Free(addr mem.Addr) {
	size, ok := h.allocated[addr]
	if !ok {
		panic(fmt.Sprintf("txheap: free of unallocated address %#x", addr))
	}
	h.tick()
	delete(h.allocated, addr)
	h.liveBytes -= size
	h.totalFrees++
	e := Extent{addr, size}
	if h.inTx {
		h.txFrees = append(h.txFrees, e)
	} else {
		h.insertFree(e)
	}
}

// SizeOf returns the allocation size of a live block, or 0 if addr is
// not a live block start.
func (h *Heap) SizeOf(addr mem.Addr) uint64 { return h.allocated[addr] }

// insertFree adds an extent to the sorted free list, coalescing with
// neighbours.
func (h *Heap) insertFree(e Extent) {
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].Addr >= e.Addr })
	h.free = append(h.free, Extent{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = e
	// Coalesce with successor.
	if i+1 < len(h.free) && h.free[i].End() == h.free[i+1].Addr {
		h.free[i].Size += h.free[i+1].Size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	// Coalesce with predecessor.
	if i > 0 && h.free[i-1].End() == h.free[i].Addr {
		h.free[i-1].Size += h.free[i].Size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
}

// TxAllocs returns the extents allocated by the current transaction —
// the provenance set the compiler's Pattern 1 analysis consumes: stores
// into these extents are log-free candidates.
func (h *Heap) TxAllocs() []Extent {
	out := make([]Extent, len(h.txAllocs))
	copy(out, h.txAllocs)
	return out
}

// InTxAlloc reports whether addr lies inside a block allocated by the
// current transaction.
func (h *Heap) InTxAlloc(addr mem.Addr) bool {
	for _, e := range h.txAllocs {
		if addr >= e.Addr && addr < e.End() {
			return true
		}
	}
	return false
}

// InTxFree reports whether addr lies inside a block freed by the
// current transaction (stores to it need no persistence, §IV-B).
func (h *Heap) InTxFree(addr mem.Addr) bool {
	for _, e := range h.txFrees {
		if addr >= e.Addr && addr < e.End() {
			return true
		}
	}
	return false
}

// Live returns the live extents, sorted by address.
func (h *Heap) Live() []Extent {
	out := make([]Extent, 0, len(h.allocated))
	for a, s := range h.allocated {
		out = append(out, Extent{a, s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats returns (allocs, frees, bytes allocated, live bytes).
func (h *Heap) Stats() (allocs, frees, bytes, live uint64) {
	return h.totalAllocs, h.totalFrees, h.totalBytes, h.liveBytes
}

// RebuildReport describes a post-crash heap reconstruction.
type RebuildReport struct {
	// ReachableBlocks/Bytes is what the mark phase found live.
	ReachableBlocks int
	ReachableBytes  uint64
	// ReclaimedGaps/Bytes is allocated-looking space between reachable
	// blocks that returned to the free list (leaked allocations of the
	// interrupted transaction among it).
	ReclaimedGaps  int
	ReclaimedBytes uint64
}

// Rebuild reconstructs the allocator state after a crash from the set of
// reachable extents (the mark phase's output): reachable blocks become
// the live set, every gap below the high-water mark becomes free space.
// Returns a report of what was reclaimed.
func (h *Heap) Rebuild(reachable []Extent) RebuildReport {
	sorted := make([]Extent, len(reachable))
	copy(sorted, reachable)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })

	var rep RebuildReport
	h.allocated = make(map[mem.Addr]uint64, len(sorted))
	h.free = h.free[:0]
	h.liveBytes = 0
	cursor := h.base
	for _, e := range sorted {
		if e.Addr < cursor {
			panic(fmt.Sprintf("txheap: overlapping reachable extents at %#x", e.Addr))
		}
		if gap := uint64(e.Addr - cursor); gap > 0 {
			h.insertFree(Extent{cursor, gap})
			rep.ReclaimedGaps++
			rep.ReclaimedBytes += gap
		}
		h.allocated[e.Addr] = e.Size
		h.liveBytes += e.Size
		rep.ReachableBlocks++
		rep.ReachableBytes += e.Size
		cursor = e.End()
	}
	if cursor > h.bump {
		h.bump = cursor
	}
	h.inTx = false
	h.txAllocs = h.txAllocs[:0]
	h.txFrees = h.txFrees[:0]
	h.epochFrees = h.epochFrees[:0]
	h.rebuiltGaps += uint64(rep.ReclaimedGaps)
	h.rebuiltBytes += rep.ReclaimedBytes
	return rep
}
